//! Append-only, checksummed operation log — the per-shard replication WAL.
//!
//! A cluster shard leader appends every state-changing operation (bootstrap,
//! apply, import, export) to its op log *as the serialized wire frame it
//! ships to its follower*, so the log **is** the replication stream: entry
//! `i` on the leader and entry `i` on the follower are byte-identical, a
//! follower's replay is by construction the same op sequence in the same
//! order, and (the kernel being a pure function of `(graph, BD[s], op)`)
//! the promoted follower's state is bitwise equal to the leader's.
//!
//! Two backings behind one type: [`OpLog::memory`] for in-process nodes and
//! the fault-injection harness, [`OpLog::open`] for `sbc node --dir`, which
//! persists each entry as `[len: u32][fnv1a64: u64][bytes]` (little-endian,
//! checksum over the payload) and truncates a torn tail on reopen — the
//! same crash posture as the record stores' intent journals: a half-written
//! final entry is indistinguishable from "the op never arrived", which the
//! protocol already tolerates (the coordinator re-sends unacknowledged
//! ops, and entries are deduplicated by index).

use crate::recovery::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::BdError;

/// Append-only log of opaque entries, optionally file-backed.
///
/// Entries are kept resident in both modes (the log doubles as the
/// replication send buffer: a leader re-ships any suffix on demand), so
/// `entry(i)` is always O(1).
pub struct OpLog {
    entries: Vec<Vec<u8>>,
    file: Option<File>,
}

impl OpLog {
    /// A purely in-memory log.
    pub fn memory() -> Self {
        OpLog {
            entries: Vec::new(),
            file: None,
        }
    }

    /// Open (or create) a file-backed log at `path`, recovering every
    /// complete entry and truncating a torn tail. A checksum mismatch
    /// anywhere before the tail is corruption, not a crash artifact, and
    /// is reported as an error.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, BdError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())
            .map_err(BdError::Io)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(BdError::Io)?;
        let mut entries = Vec::new();
        let mut pos = 0usize;
        let mut durable = 0usize;
        while bytes.len() - pos >= 12 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let ck = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
            let Some(end) = pos.checked_add(12 + len).filter(|&e| e <= bytes.len()) else {
                break; // torn tail: length header outruns the file
            };
            let payload = &bytes[pos + 12..end];
            if fnv1a64(payload) != ck {
                if end == bytes.len() {
                    break; // torn tail: final entry half-written
                }
                return Err(BdError::Corrupt(format!(
                    "oplog entry {} fails its checksum mid-file",
                    entries.len()
                )));
            }
            entries.push(payload.to_vec());
            pos = end;
            durable = end;
        }
        if durable < bytes.len() {
            file.set_len(durable as u64).map_err(BdError::Io)?;
        }
        file.seek(SeekFrom::Start(durable as u64))
            .map_err(BdError::Io)?;
        Ok(OpLog {
            entries,
            file: Some(file),
        })
    }

    /// Append one entry, returning its index. File-backed logs write
    /// through immediately (an entry is either fully framed or torn, never
    /// silently reordered).
    pub fn append(&mut self, entry: &[u8]) -> Result<u64, BdError> {
        if let Some(file) = &mut self.file {
            let mut frame = Vec::with_capacity(12 + entry.len());
            frame.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            frame.extend_from_slice(&fnv1a64(entry).to_le_bytes());
            frame.extend_from_slice(entry);
            file.write_all(&frame).map_err(BdError::Io)?;
        }
        self.entries.push(entry.to_vec());
        Ok(self.entries.len() as u64 - 1)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True when no entry has been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry `index`, if present.
    pub fn entry(&self, index: u64) -> Option<&[u8]> {
        self.entries.get(index as usize).map(Vec::as_slice)
    }

    /// All entries in append order.
    pub fn entries(&self) -> impl Iterator<Item = &[u8]> {
        self.entries.iter().map(Vec::as_slice)
    }

    /// Sync the file backing (no-op in memory mode).
    pub fn sync(&mut self) -> Result<(), BdError> {
        if let Some(file) = &mut self.file {
            file.sync_data().map_err(BdError::Io)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ebc_oplog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    #[test]
    fn memory_log_appends_and_reads() {
        let mut log = OpLog::memory();
        assert!(log.is_empty());
        assert_eq!(log.append(b"alpha").unwrap(), 0);
        assert_eq!(log.append(b"beta").unwrap(), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.entry(1), Some(&b"beta"[..]));
        assert_eq!(log.entry(2), None);
        let all: Vec<_> = log.entries().collect();
        assert_eq!(all, vec![&b"alpha"[..], &b"beta"[..]]);
    }

    #[test]
    fn file_log_round_trips_across_reopen() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two words").unwrap();
            log.append(b"").unwrap(); // empty entries are legal
            log.sync().unwrap();
        }
        let mut log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.entry(0), Some(&b"one"[..]));
        assert_eq!(log.entry(2), Some(&b""[..]));
        // appending after reopen continues the sequence
        assert_eq!(log.append(b"four").unwrap(), 3);
        drop(log);
        let log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"keep me").unwrap();
            log.append(b"doomed").unwrap();
        }
        // chop the final entry mid-payload
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entry(0), Some(&b"keep me"[..]));
        // the truncated file accepts appends at the recovered position
        log.append(b"replacement").unwrap();
        drop(log);
        let log = OpLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.entry(1), Some(&b"replacement"[..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut log = OpLog::open(&path).unwrap();
            log.append(b"first entry").unwrap();
            log.append(b"second entry").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0x20; // flip a payload byte of entry 0
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(OpLog::open(&path), Err(BdError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
