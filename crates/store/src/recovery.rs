//! Crash recovery for the on-disk store: the write-ahead intent record and
//! the `open()`-time repair state machine.
//!
//! Every multi-file mutation of a [`crate::DiskBdStore`] — registering a
//! source (`add_source`: record + header + sidecar), re-slabbing
//! (`grow_vertex` past the headroom), and v1→v2 migration — first writes a
//! tiny fixed-size *intent record* to the `<path>.wal` sidecar, then
//! performs the mutation, and finally deletes the intent to commit. A crash
//! at any point leaves one of a small set of observable states, and the
//! recovery pass (invoked by `DiskBdStore::open` before the normal
//! header/sidecar validation) rolls the torn mutation *forward* when the
//! durable payload is complete or *back* to the pre-mutation state when it
//! is not. DESIGN.md §7 tabulates the full crash matrix.
//!
//! ## Intent record layout (`<path>.wal`, 76 bytes)
//!
//! ```text
//! offset  size  field
//!      0     7  magic "EBCWAL\n"
//!      7     1  op (1 = AddSource, 2 = Reslab, 3 = Migrate, 4 = RemoveSource)
//!      8     4  source id, u32 LE      (AddSource/RemoveSource only, else 0)
//!     12     8  payload checksum, u64 LE (FNV-1a of the encoded record
//!                                         being appended; AddSource only)
//!     20    24  old geometry: n, count, cap (u64 LE each)
//!     44    24  new geometry: n, count, cap (u64 LE each)
//!     68     8  FNV-1a checksum of bytes 0..68, u64 LE
//! ```
//!
//! ## Crash model
//!
//! Recovery is *kill-safe by write ordering*: the intent is fully written
//! before the guarded files are touched, individual header-field updates
//! and record `write_all`s are assumed atomic at the syscall level, and the
//! sidecar is always replaced via temp-file + `rename`. A torn intent file
//! (bad magic/length/checksum) therefore proves the guarded mutation never
//! began and is simply discarded. The appended-record checksum stored in
//! the intent lets recovery detect (and roll back) an appended record whose
//! bytes did not survive.
//!
//! The guarantee is scoped to **process kill**, where the page cache
//! preserves write ordering. It does *not* extend to power loss:
//! [`crate::DiskBdStore::flush`] makes the record data durable, but the
//! intent record, the sidecar rename, and their containing directory are
//! deliberately not fsynced on the hot path, so a power cut can still
//! reorder the journal protocol against the data writes. Hardening the
//! journal for power loss (fsync of `.wal`, the sidecar temp file, and the
//! directory at each commit point) is future work.

use crate::disk::{
    read_sidecar_ids, write_header_count, write_sidecar_atomic, FormatVersion, Header,
};
use ebc_core::bd::{BdError, BdResult};
use ebc_graph::VertexId;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 7] = b"EBCWAL\n";
const WAL_LEN: usize = 76;

/// The multi-file mutation a write-ahead intent record guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentOp {
    /// `add_source`: append a record, bump the header count, rewrite the
    /// sidecar.
    AddSource,
    /// Re-slab: rewrite the data file at a larger slab capacity (headroom
    /// exhausted by `grow_vertex`).
    Reslab,
    /// v1→v2 migration: rewrite a legacy fixed-layout file as format v2.
    Migrate,
    /// `remove_source`: copy the final record into the vacated slot,
    /// decrement the header count, rewrite the sidecar, truncate.
    RemoveSource,
}

impl IntentOp {
    fn id(self) -> u8 {
        match self {
            IntentOp::AddSource => 1,
            IntentOp::Reslab => 2,
            IntentOp::Migrate => 3,
            IntentOp::RemoveSource => 4,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(IntentOp::AddSource),
            2 => Some(IntentOp::Reslab),
            3 => Some(IntentOp::Migrate),
            4 => Some(IntentOp::RemoveSource),
            _ => None,
        }
    }
}

/// What `open()` had to do to repair a torn mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The durable payload of the torn mutation was complete; recovery
    /// finished the remaining metadata steps.
    RolledForward(IntentOp),
    /// The payload was incomplete; recovery restored the exact
    /// pre-mutation state.
    RolledBack(IntentOp),
    /// A torn or unparsable intent record was discarded — the guarded
    /// mutation had not begun, so no repair was needed.
    DiscardedIntent,
}

/// File geometry snapshot carried by an intent record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Geometry {
    pub n: u64,
    pub count: u64,
    pub cap: u64,
}

impl Geometry {
    pub(crate) fn of(h: &Header) -> Self {
        Geometry {
            n: h.n as u64,
            count: h.count as u64,
            cap: h.cap as u64,
        }
    }
}

/// One write-ahead intent record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Intent {
    pub op: IntentOp,
    pub source: VertexId,
    pub payload_checksum: u64,
    pub old: Geometry,
    pub new: Geometry,
}

// 64-bit FNV-1a — used by intent records, the appended-record payload
// guard, and the shard manifest; one canonical implementation lives in
// ebc-graph (it also seals the structural snapshots the session manifest
// embeds, so both layers must agree bit for bit).
pub use ebc_graph::snapshot::fnv1a64;

impl Intent {
    pub(crate) fn encode(&self) -> [u8; WAL_LEN] {
        let mut out = [0u8; WAL_LEN];
        out[..7].copy_from_slice(WAL_MAGIC);
        out[7] = self.op.id();
        out[8..12].copy_from_slice(&self.source.to_le_bytes());
        out[12..20].copy_from_slice(&self.payload_checksum.to_le_bytes());
        for (i, g) in [self.old, self.new].into_iter().enumerate() {
            let base = 20 + 24 * i;
            out[base..base + 8].copy_from_slice(&g.n.to_le_bytes());
            out[base + 8..base + 16].copy_from_slice(&g.count.to_le_bytes());
            out[base + 16..base + 24].copy_from_slice(&g.cap.to_le_bytes());
        }
        let ck = fnv1a64(&out[..68]);
        out[68..76].copy_from_slice(&ck.to_le_bytes());
        out
    }

    pub(crate) fn decode(raw: &[u8]) -> Option<Intent> {
        if raw.len() != WAL_LEN || &raw[..7] != WAL_MAGIC {
            return None;
        }
        let ck = u64::from_le_bytes(raw[68..76].try_into().expect("8 bytes"));
        if ck != fnv1a64(&raw[..68]) {
            return None;
        }
        let u64_at =
            |off: usize| u64::from_le_bytes(raw[off..off + 8].try_into().expect("8 bytes"));
        let geom = |base: usize| Geometry {
            n: u64_at(base),
            count: u64_at(base + 8),
            cap: u64_at(base + 16),
        };
        Some(Intent {
            op: IntentOp::from_id(raw[7])?,
            source: u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes")),
            payload_checksum: u64_at(12),
            old: geom(20),
            new: geom(44),
        })
    }
}

/// Path of the intent record guarding the store at `path`.
pub(crate) fn wal_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".wal");
    PathBuf::from(p)
}

/// Durably write the intent record — the first step of every guarded
/// mutation.
pub(crate) fn write_intent(path: &Path, intent: &Intent) -> BdResult<()> {
    std::fs::write(wal_path(path), intent.encode())?;
    Ok(())
}

/// Commit a guarded mutation by deleting its intent record.
pub(crate) fn clear_intent(path: &Path) -> BdResult<()> {
    match std::fs::remove_file(wal_path(path)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Inspect `<path>.wal` and, if an intent record is pending, repair the
/// store to a consistent state. Returns what was done, or `None` when no
/// intent was pending. Called by `DiskBdStore::open` before validation.
pub(crate) fn run_recovery(path: &Path) -> BdResult<Option<RecoveryAction>> {
    let wal = wal_path(path);
    let raw = match std::fs::read(&wal) {
        Ok(raw) => raw,
        Err(_) => return Ok(None),
    };
    let intent = match Intent::decode(&raw) {
        Some(i) => i,
        None => {
            // A torn intent means the guarded mutation never began: the
            // intent write is strictly ordered before any file mutation.
            std::fs::remove_file(&wal)?;
            return Ok(Some(RecoveryAction::DiscardedIntent));
        }
    };
    let action = match intent.op {
        IntentOp::AddSource => recover_add_source(path, &intent)?,
        IntentOp::Reslab | IntentOp::Migrate => recover_rewrite(path, &intent)?,
        IntentOp::RemoveSource => recover_remove_source(path, &intent)?,
    };
    std::fs::remove_file(&wal)?;
    Ok(Some(action))
}

/// Repair a torn `add_source`: roll forward iff the appended record is
/// fully durable (length reached *and* payload checksum matches), else roll
/// back to the pre-append state. Header count and sidecar are rewritten to
/// match whichever side was chosen, and any partial trailing bytes are
/// truncated away.
fn recover_add_source(path: &Path, intent: &Intent) -> BdResult<RecoveryAction> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let header = Header::read_from(&mut file)?;
    // add_source never changes n/cap, and only runs on v2 files (v1 stores
    // migrate before their first write)
    if header.version != FormatVersion::V2
        || header.n as u64 != intent.old.n
        || header.cap as u64 != intent.old.cap
    {
        return Err(BdError::Corrupt(
            "intent record does not match store geometry".into(),
        ));
    }
    let stride = header.stride() as u64;
    let actual = file.metadata()?.len();
    let new_len = header.len() + intent.new.count * stride;
    let complete = actual >= new_len && {
        let mut rec = vec![0u8; stride as usize];
        file.seek(SeekFrom::Start(header.len() + intent.old.count * stride))?;
        file.read_exact(&mut rec)?;
        fnv1a64(&rec) == intent.payload_checksum
    };
    let mut ids = read_sidecar_ids(path)?;
    if complete {
        write_header_count(&mut file, intent.new.count)?;
        file.set_len(new_len)?;
        if ids.len() as u64 == intent.old.count {
            ids.push(intent.source);
            write_sidecar_atomic(path, &ids)?;
        } else if ids.len() as u64 != intent.new.count {
            return Err(BdError::Corrupt("sidecar matches neither side".into()));
        }
        Ok(RecoveryAction::RolledForward(IntentOp::AddSource))
    } else {
        write_header_count(&mut file, intent.old.count)?;
        file.set_len(header.len() + intent.old.count * stride)?;
        if ids.len() as u64 == intent.new.count {
            ids.truncate(intent.old.count as usize);
            write_sidecar_atomic(path, &ids)?;
        } else if ids.len() as u64 != intent.old.count {
            return Err(BdError::Corrupt("sidecar matches neither side".into()));
        }
        Ok(RecoveryAction::RolledBack(IntentOp::AddSource))
    }
}

/// Repair a torn `remove_source`. Unlike `add_source`, a removal can
/// **always** be rolled forward: every byte it needs (the final record it
/// copies into the vacated slot) survives until the truncate, which is the
/// last step before commit — so recovery simply finishes the removal,
/// idempotently, from whichever step the kill interrupted. The intent is
/// only ever written *after* the caller has secured the removed record
/// elsewhere (an export journal, for handoffs), so completing the removal
/// never loses data.
fn recover_remove_source(path: &Path, intent: &Intent) -> BdResult<RecoveryAction> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let header = Header::read_from(&mut file)?;
    // remove_source never changes n/cap and only runs on v2 files
    if header.version != FormatVersion::V2
        || header.n as u64 != intent.old.n
        || header.cap as u64 != intent.old.cap
        || intent.old.count != intent.new.count + 1
    {
        return Err(BdError::Corrupt(
            "intent record does not match store geometry".into(),
        ));
    }
    let stride = header.stride() as u64;
    let mut ids = read_sidecar_ids(path)?;
    if let Some(slot) = ids.iter().position(|&id| id == intent.source) {
        // The sidecar still lists the source: the removal did not commit.
        if ids.len() as u64 != intent.old.count {
            return Err(BdError::Corrupt("sidecar matches neither side".into()));
        }
        let last = intent.new.count; // index of the final record, old layout
        if (slot as u64) != last {
            // (re)do the idempotent last→slot copy; the donor bytes are
            // still on disk because the truncate below has not happened
            let mut rec = vec![0u8; stride as usize];
            file.seek(SeekFrom::Start(header.len() + last * stride))?;
            file.read_exact(&mut rec)
                .map_err(|_| BdError::Corrupt("final record truncated".into()))?;
            file.seek(SeekFrom::Start(header.len() + slot as u64 * stride))?;
            file.write_all(&rec)?;
        }
        write_header_count(&mut file, intent.new.count)?;
        ids.swap_remove(slot);
        write_sidecar_atomic(path, &ids)?;
    } else if ids.len() as u64 == intent.new.count {
        // Sidecar already new: the copy and count are durable by ordering.
        write_header_count(&mut file, intent.new.count)?;
    } else {
        return Err(BdError::Corrupt("sidecar matches neither side".into()));
    }
    file.set_len(header.len() + intent.new.count * stride)?;
    Ok(RecoveryAction::RolledForward(IntentOp::RemoveSource))
}

/// Repair a torn re-slab or migration. The rewrite goes through a fully
/// written `<path>.tmp` followed by an atomic rename, so the main file is
/// always entirely old or entirely new; recovery just decides which side
/// won and removes the leftover temp file.
fn recover_rewrite(path: &Path, intent: &Intent) -> BdResult<RecoveryAction> {
    let mut file = OpenOptions::new().read(true).open(path)?;
    let header = Header::read_from(&mut file)?;
    let geometry = Geometry::of(&header);
    let tmp = path.with_extension("tmp");
    let old_version = match intent.op {
        IntentOp::Migrate => FormatVersion::V1,
        _ => FormatVersion::V2,
    };
    if header.version == FormatVersion::V2 && geometry == intent.new {
        let _ = std::fs::remove_file(&tmp);
        Ok(RecoveryAction::RolledForward(intent.op))
    } else if header.version == old_version && geometry == intent.old {
        let _ = std::fs::remove_file(&tmp);
        Ok(RecoveryAction::RolledBack(intent.op))
    } else {
        Err(BdError::Corrupt(
            "store matches neither side of the pending rewrite intent".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_intent() -> Intent {
        Intent {
            op: IntentOp::AddSource,
            source: 42,
            payload_checksum: 0xdead_beef,
            old: Geometry {
                n: 10,
                count: 3,
                cap: 18,
            },
            new: Geometry {
                n: 10,
                count: 4,
                cap: 18,
            },
        }
    }

    #[test]
    fn intent_roundtrips() {
        let intent = sample_intent();
        let raw = intent.encode();
        assert_eq!(raw.len(), WAL_LEN);
        assert_eq!(Intent::decode(&raw), Some(intent));
    }

    #[test]
    fn torn_or_tampered_intents_rejected() {
        let intent = sample_intent();
        let raw = intent.encode();
        assert_eq!(Intent::decode(&raw[..WAL_LEN - 1]), None, "short");
        let mut bad = raw;
        bad[30] ^= 1;
        assert_eq!(Intent::decode(&bad), None, "checksum must catch bit flips");
        let mut bad_magic = intent.encode();
        bad_magic[0] = b'X';
        assert_eq!(Intent::decode(&bad_magic), None);
        let mut bad_op = intent.encode();
        bad_op[7] = 9;
        assert_eq!(Intent::decode(&bad_op), None, "unknown op");
    }

    #[test]
    fn fnv_is_stable() {
        // pin the checksum function: recovery of files written by an older
        // build depends on it never changing
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"EBCBD2\n"), fnv1a64(b"EBCBD2\n"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
