//! Per-shard store files and the cross-shard source handoff protocol.
//!
//! One [`DiskBdStore`] per shard (`shard-<k>.ebc`, each with its own `.idx`
//! sidecar and `.wal` intent journal), plus a tiny `shards.manifest` naming
//! the shard count and the current **map version**. A [`ShardSet`] is the
//! at-rest embodiment of the engine's source→shard map: the authoritative
//! record of which shard owns which source *is the union of the per-shard
//! sidecars*, and the manifest version advances once per committed handoff.
//!
//! ## Handoff protocol
//!
//! Moving source `s` from shard `a` (donor) to shard `b` (recipient) is a
//! five-step sequence, each step durable before the next begins:
//!
//! 1. **donor export journal** — `shard-a.ebc.exp<s>` holds the full
//!    serialized record plus the recipient id (see
//!    [`crate::disk::ExportJournal`]);
//! 2. **donor removal** — `shard-a.ebc` drops the source (guarded by its
//!    own `RemoveSource` WAL intent, always roll-forward);
//! 3. **recipient import** — `shard-b.ebc` registers the record (guarded
//!    by its own `AddSource` WAL intent);
//! 4. **map commit** — the manifest is rewritten with `version + 1`;
//! 5. the export journal is retired.
//!
//! A kill between any two steps leaves a state [`ShardSet::open`] repairs
//! to *exactly-once ownership*: the pending export journal names the source
//! and recipient, per-shard `open()` recovery has already settled each
//! file, and the census over the sidecars decides whether to roll the
//! handoff back (donor still owns the source) or forward (install the
//! journaled payload if nobody owns it, then commit the map). DESIGN.md §8
//! tabulates the crash matrix.

use crate::codec::CodecKind;
use crate::disk::{pending_exports, read_export_journal, DiskBdStore};
use crate::recovery::fnv1a64;
use ebc_core::bd::{BdError, BdResult, BdStore};
use ebc_graph::VertexId;
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &[u8; 7] = b"EBCSHM\n";
/// Original (v0) manifest: magic + pad + shards + version + checksum.
const MANIFEST_LEN_V0: usize = 32;
/// Extended (v1) manifest: v0 fields + the caller-set graph stamp — the
/// binding between the shard directory and the session layer's graph
/// snapshot (see [`ShardSet::set_graph_stamp`]).
const MANIFEST_LEN_V1: usize = 40;

/// Path of shard `k`'s data file inside `dir`.
pub fn shard_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{k}.ebc"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("shards.manifest")
}

/// Atomically replace the manifest (temp file + rename): readers see the
/// old version or the new one, nothing in between.
fn write_manifest(dir: &Path, shards: u64, version: u64, graph_stamp: u64) -> BdResult<()> {
    let mut buf = Vec::with_capacity(MANIFEST_LEN_V1);
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.push(1); // manifest format: 1 = graph-stamp extension present
    buf.extend_from_slice(&shards.to_le_bytes());
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&graph_stamp.to_le_bytes());
    let ck = fnv1a64(&buf);
    buf.extend_from_slice(&ck.to_le_bytes());
    let path = manifest_path(dir);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, buf)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Read either manifest format: v0 (32 bytes, no stamp — reported as 0) or
/// v1 (40 bytes with the graph stamp). Returns `(shards, version, stamp)`.
fn read_manifest(dir: &Path) -> BdResult<(usize, u64, u64)> {
    let raw = std::fs::read(manifest_path(dir))
        .map_err(|_| BdError::Corrupt("missing shard manifest".into()))?;
    if (raw.len() != MANIFEST_LEN_V0 && raw.len() != MANIFEST_LEN_V1) || &raw[..7] != MANIFEST_MAGIC
    {
        return Err(BdError::Corrupt("bad shard manifest".into()));
    }
    let body = raw.len() - 8;
    let ck = u64::from_le_bytes(raw[body..].try_into().expect("8 bytes"));
    if ck != fnv1a64(&raw[..body]) {
        return Err(BdError::Corrupt("shard manifest checksum mismatch".into()));
    }
    let shards = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")) as usize;
    let version = u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes"));
    let graph_stamp = if raw.len() == MANIFEST_LEN_V1 {
        u64::from_le_bytes(raw[24..32].try_into().expect("8 bytes"))
    } else {
        0
    };
    if shards == 0 {
        return Err(BdError::Corrupt("shard manifest names zero shards".into()));
    }
    Ok((shards, version, graph_stamp))
}

/// What [`ShardSet::open`] had to do about one pending export journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandoffRecovery {
    /// The donor still owned the source (its removal never committed): the
    /// handoff never happened; the journal was discarded.
    RolledBack {
        /// The source mid-handoff.
        source: VertexId,
        /// The shard that was donating it.
        donor: usize,
    },
    /// The source was owned by nobody: the journaled payload was installed
    /// in the recipient and the map committed.
    Reinstalled {
        /// The source mid-handoff.
        source: VertexId,
        /// The shard the payload was installed into.
        to: usize,
    },
    /// The recipient already owned the source (import durable, journal not
    /// yet retired): only the map commit / journal retirement was finished.
    Completed {
        /// The source mid-handoff.
        source: VertexId,
        /// The shard that owns it.
        to: usize,
    },
    /// A torn or unparsable journal was discarded — by write ordering the
    /// guarded export never began.
    DiscardedJournal {
        /// The shard whose journal was discarded.
        donor: usize,
    },
}

/// Simulated kill points inside [`ShardSet::handoff`]. Test support for the
/// crash-recovery suite; the set must be dropped afterwards, like a killed
/// process.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffKill {
    /// Die after the donor's export journal is durable, before its removal.
    AfterExportJournal,
    /// Die after the donor's removal committed, before the recipient import.
    AfterExport,
    /// Die after the recipient import committed, before the map commit.
    AfterImport,
    /// Die after the map commit, before the export journal is retired.
    AfterMapCommit,
}

/// A directory of per-shard `BD` store files with movable source ownership.
///
/// ```
/// use ebc_store::{BdStore, CodecKind, ShardSet};
///
/// let dir = std::env::temp_dir().join(format!("ebc_shard_doc_{}", std::process::id()));
/// let mut set = ShardSet::create(&dir, 3, 2, CodecKind::Wide)?;
/// set.shard_mut(0).add_source(5, vec![0, 1, 2], vec![1, 1, 1], vec![0.0; 3])?;
///
/// // hand source 5 over to shard 1: journaled on both sides + map commit
/// set.handoff(5, 0, 1)?;
/// assert_eq!(set.assignment()[1], vec![5]);
/// assert_eq!(set.version(), 1);
/// drop(set);
///
/// // reopening repairs any half-done handoff to exactly-once ownership
/// let set = ShardSet::open(&dir)?;
/// assert_eq!(set.assignment()[1], vec![5]);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), ebc_store::BdError>(())
/// ```
pub struct ShardSet {
    dir: PathBuf,
    shards: Vec<DiskBdStore>,
    version: u64,
    /// Caller-set binding to the session layer's graph snapshot (0 when
    /// never stamped); preserved across handoffs and recovery.
    graph_stamp: u64,
    recovered: Vec<HandoffRecovery>,
    /// First mid-handoff failure; sticky. A failed step after the donor
    /// export may leave the *live* object out of sync with exactly-once
    /// ownership — the journal on disk has the truth, so every further
    /// handoff is refused until the directory is reopened.
    dead: Option<String>,
}

impl ShardSet {
    /// Create a fresh set of `p` empty shard stores for records of `n`
    /// vertices under `dir` (created if missing), with manifest version 0.
    pub fn create<P: AsRef<Path>>(dir: P, n: usize, p: usize, codec: CodecKind) -> BdResult<Self> {
        assert!(p > 0, "a shard set needs at least one shard");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut shards = Vec::with_capacity(p);
        for k in 0..p {
            let path = shard_path(&dir, k);
            // a fresh incarnation must not inherit a previous one's pending
            // export journals, or a later open() would resurrect a phantom
            // source from stale payload (create() already clears the WAL)
            for stale in pending_exports(&path)? {
                std::fs::remove_file(stale)?;
            }
            shards.push(DiskBdStore::create(path, n, codec)?);
        }
        write_manifest(&dir, p as u64, 0, 0)?;
        Ok(ShardSet {
            dir,
            shards,
            version: 0,
            graph_stamp: 0,
            recovered: Vec::new(),
            dead: None,
        })
    }

    /// Open an existing set: run per-shard `open()` recovery, then resolve
    /// any handoff a crash left in flight so that every source is owned by
    /// exactly one shard, and re-commit the map if a handoff was rolled
    /// forward.
    pub fn open<P: AsRef<Path>>(dir: P) -> BdResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (p, mut version, graph_stamp) = read_manifest(&dir)?;
        let mut shards = Vec::with_capacity(p);
        for k in 0..p {
            shards.push(DiskBdStore::open(shard_path(&dir, k))?);
        }
        let n = shards[0].n();
        if shards.iter().any(|s| s.n() != n) {
            return Err(BdError::Corrupt("shard vertex counts diverge".into()));
        }
        // resolve pending export journals against the ownership census
        let mut recovered = Vec::new();
        let mut committed = 0u64;
        for donor in 0..p {
            for journal_file in pending_exports(shards[donor].path())? {
                let journal = match read_export_journal(&journal_file)? {
                    Some(j) => j,
                    None => {
                        std::fs::remove_file(&journal_file)?;
                        recovered.push(HandoffRecovery::DiscardedJournal { donor });
                        continue;
                    }
                };
                let s = journal.source;
                let owners: Vec<usize> = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| st.sources().contains(&s))
                    .map(|(k, _)| k)
                    .collect();
                let action = if owners.contains(&donor) {
                    // the donor's removal never committed (or rolled back):
                    // the handoff never happened
                    HandoffRecovery::RolledBack { source: s, donor }
                } else if let Some(&to) = owners.first() {
                    // import durable, journal not retired: finish the commit
                    committed += 1;
                    HandoffRecovery::Completed { source: s, to }
                } else {
                    // owned by nobody: the kill hit between donor removal
                    // and recipient import — install the journaled payload
                    let to = journal.tag as usize;
                    if to >= p {
                        return Err(BdError::Corrupt(format!(
                            "export journal for source {s} names shard {to} of {p}"
                        )));
                    }
                    if journal.d.len() != n {
                        return Err(BdError::Corrupt(format!(
                            "export journal for source {s} has {} slots, shards have {n}",
                            journal.d.len()
                        )));
                    }
                    let rec = journal.into_record();
                    shards[to].add_source(rec.source, rec.d, rec.sigma, rec.delta)?;
                    committed += 1;
                    HandoffRecovery::Reinstalled { source: s, to }
                };
                std::fs::remove_file(&journal_file)?;
                recovered.push(action);
            }
        }
        // exactly-once: no source may appear in two shards' sidecars
        let mut seen = ebc_graph::FxHashMap::default();
        for (k, st) in shards.iter().enumerate() {
            for s in st.sources() {
                if let Some(prev) = seen.insert(s, k) {
                    return Err(BdError::Corrupt(format!(
                        "source {s} owned by shards {prev} and {k}"
                    )));
                }
            }
        }
        if committed > 0 {
            version += committed;
            write_manifest(&dir, p as u64, version, graph_stamp)?;
        }
        Ok(ShardSet {
            dir,
            shards,
            version,
            graph_stamp,
            recovered,
            dead: None,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Vertex slots per record (identical across shards).
    pub fn n(&self) -> usize {
        self.shards[0].n()
    }

    /// The map version: bumped once per committed handoff (including those
    /// `open()` rolled forward).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// What `open()` had to repair — empty after a clean shutdown.
    pub fn recovered(&self) -> &[HandoffRecovery] {
        &self.recovered
    }

    /// The directory this set lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The per-vertex codec the shard stores encode records with
    /// (identical across shards by construction).
    pub fn codec(&self) -> CodecKind {
        self.shards[0].codec()
    }

    /// The caller-set graph stamp recorded in the manifest (0 when never
    /// stamped). The session layer stores the checksum of its graph
    /// snapshot here, binding the shard directory to the snapshot it was
    /// checkpointed with.
    pub fn graph_stamp(&self) -> u64 {
        self.graph_stamp
    }

    /// Record `stamp` in the manifest (atomic rewrite, version unchanged).
    pub fn set_graph_stamp(&mut self, stamp: u64) -> BdResult<()> {
        write_manifest(&self.dir, self.shards.len() as u64, self.version, stamp)?;
        self.graph_stamp = stamp;
        Ok(())
    }

    /// Serialize every record shard `k` currently owns, in the shard's slot
    /// order — the per-shard record iteration a migration or verification
    /// pass reads without disturbing ownership (records stay in place;
    /// contrast [`DiskBdStore::export_source`]).
    pub fn shard_records(&mut self, k: usize) -> BdResult<Vec<crate::ExportedRecord>> {
        let shard = &mut self.shards[k];
        let sources = shard.sources();
        let mut out = Vec::with_capacity(sources.len());
        for s in sources {
            let (mut d, mut sigma, mut delta) = (Vec::new(), Vec::new(), Vec::new());
            shard.update_with(s, &mut |view| {
                d = view.d.to_vec();
                sigma = view.sigma.to_vec();
                delta = view.delta.to_vec();
                false
            })?;
            out.push(crate::ExportedRecord {
                source: s,
                d,
                sigma,
                delta,
            });
        }
        Ok(out)
    }

    /// Why the set refuses further handoffs, if a previous handoff failed
    /// mid-protocol. Reopening the directory ([`ShardSet::open`]) repairs
    /// the on-disk state from the pending journal and clears this.
    pub fn poisoned(&self) -> Option<&str> {
        self.dead.as_deref()
    }

    /// Shard `k`'s store.
    pub fn shard(&self, k: usize) -> &DiskBdStore {
        &self.shards[k]
    }

    /// Mutable access to shard `k`'s store.
    pub fn shard_mut(&mut self, k: usize) -> &mut DiskBdStore {
        &mut self.shards[k]
    }

    /// Per-shard owned-source lists (shard `k`'s slot order) — the at-rest
    /// source→shard assignment.
    pub fn assignment(&self) -> Vec<Vec<VertexId>> {
        self.shards.iter().map(|s| s.sources()).collect()
    }

    /// Flush every shard's data and index to durable storage.
    pub fn flush(&mut self) -> BdResult<()> {
        for shard in &mut self.shards {
            shard.flush()?;
        }
        Ok(())
    }

    /// Tear the set apart into its per-shard stores (e.g. to hand each to a
    /// worker thread). The manifest and journals stay on disk; reopen the
    /// directory with [`ShardSet::open`] to reassemble.
    pub fn into_stores(self) -> Vec<DiskBdStore> {
        self.shards
    }

    /// Execute one handoff: move `source` from shard `from` to shard `to`
    /// through the journaled five-step protocol. On success the map version
    /// has advanced by one and no journal is left behind.
    pub fn handoff(&mut self, source: VertexId, from: usize, to: usize) -> BdResult<()> {
        self.handoff_inner(source, from, to, None)
    }

    /// [`ShardSet::handoff`] with a simulated crash (test support; the set
    /// must be dropped afterwards, like a killed process).
    #[doc(hidden)]
    pub fn handoff_crashing(
        &mut self,
        source: VertexId,
        from: usize,
        to: usize,
        kill: HandoffKill,
    ) -> BdResult<()> {
        self.handoff_inner(source, from, to, Some(kill))
    }

    fn handoff_inner(
        &mut self,
        source: VertexId,
        from: usize,
        to: usize,
        kill: Option<HandoffKill>,
    ) -> BdResult<()> {
        if let Some(why) = &self.dead {
            return Err(BdError::Corrupt(format!(
                "shard set needs reopen after a failed handoff: {why}"
            )));
        }
        let p = self.shards.len();
        if from >= p || to >= p || from == to {
            return Err(BdError::Corrupt(format!(
                "invalid handoff {source}: shard {from} -> {to} of {p}"
            )));
        }
        if !self.shards[from].sources().contains(&source) {
            // rejected before any mutation: the set stays healthy
            return Err(BdError::UnknownSource(source));
        }
        // From here on a failure can leave the live object out of sync with
        // the (journal-repairable) on-disk state: poison so the only way
        // forward is a reopen, mirroring the engine's behaviour.
        let result = self.handoff_steps(source, from, to, kill);
        if let Err(e) = &result {
            self.dead = Some(format!("handoff of source {source} failed: {e}"));
        }
        result
    }

    fn handoff_steps(
        &mut self,
        source: VertexId,
        from: usize,
        to: usize,
        kill: Option<HandoffKill>,
    ) -> BdResult<()> {
        let p = self.shards.len();
        let record = if kill == Some(HandoffKill::AfterExportJournal) {
            return self.shards[from]
                .export_source_crashing(source, to as u64, crate::disk::ExportCrash::AfterJournal)
                .map(|_| ());
        } else {
            self.shards[from].export_source(source, to as u64)?
        };
        if kill == Some(HandoffKill::AfterExport) {
            return Ok(());
        }
        self.shards[to].add_source(record.source, record.d, record.sigma, record.delta)?;
        if kill == Some(HandoffKill::AfterImport) {
            return Ok(());
        }
        // commit on disk first; the live version only advances on success
        write_manifest(&self.dir, p as u64, self.version + 1, self.graph_stamp)?;
        self.version += 1;
        if kill == Some(HandoffKill::AfterMapCommit) {
            return Ok(());
        }
        self.shards[from].retire_export(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("ebc_shard_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(n: usize, salt: u64) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
        let d = (0..n).map(|i| ((i as u64 + salt) % 6) as u32).collect();
        let sigma = (0..n).map(|i| (i as u64 * 2 + salt) % 50 + 1).collect();
        let delta = (0..n).map(|i| i as f64 * 0.125 + salt as f64).collect();
        (d, sigma, delta)
    }

    #[test]
    fn create_populate_handoff_reopen() {
        let dir = tmpdir("roundtrip");
        let n = 5;
        let mut set = ShardSet::create(&dir, n, 3, CodecKind::Wide).unwrap();
        for (shard, s) in [(0usize, 0u32), (0, 1), (1, 2), (2, 3)] {
            let (d, sig, del) = record(n, s as u64);
            set.shard_mut(shard).add_source(s, d, sig, del).unwrap();
        }
        set.handoff(1, 0, 2).unwrap();
        assert_eq!(set.version(), 1);
        assert_eq!(set.assignment(), vec![vec![0], vec![2], vec![3, 1]]);
        set.flush().unwrap();
        drop(set);
        let mut set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.version(), 1);
        assert!(set.recovered().is_empty(), "clean shutdown");
        // the moved record survived bit-for-bit
        let (d, sig, del) = record(n, 1);
        set.shard_mut(2)
            .update_with(1, &mut |view| {
                assert_eq!(view.d, &d[..]);
                assert_eq!(view.sigma, &sig[..]);
                assert_eq!(view.delta, &del[..]);
                false
            })
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_handoffs_rejected() {
        let dir = tmpdir("invalid");
        let mut set = ShardSet::create(&dir, 3, 2, CodecKind::Wide).unwrap();
        let (d, sig, del) = record(3, 0);
        set.shard_mut(0).add_source(0, d, sig, del).unwrap();
        assert!(set.handoff(0, 0, 0).is_err(), "self-handoff");
        assert!(set.handoff(0, 0, 9).is_err(), "recipient out of range");
        assert!(set.handoff(7, 0, 1).is_err(), "unknown source");
        // the set is still usable
        set.handoff(0, 0, 1).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_handoff_poisons_until_reopen() {
        let dir = tmpdir("poison");
        let n = 3;
        let mut set = ShardSet::create(&dir, n, 2, CodecKind::Wide).unwrap();
        let (d, sig, del) = record(n, 9);
        set.shard_mut(0)
            .add_source(9, d.clone(), sig.clone(), del.clone())
            .unwrap();
        // sabotage: the recipient secretly owns 9 too, so the import step
        // will fail with DuplicateSource after the donor already exported
        set.shard_mut(1).add_source(9, d, sig, del).unwrap();
        assert!(matches!(
            set.handoff(9, 0, 1),
            Err(BdError::DuplicateSource(9))
        ));
        // the live object can no longer vouch for exactly-once ownership:
        // every further handoff is refused until a reopen
        assert!(set.poisoned().is_some());
        let (d2, sig2, del2) = record(n, 4);
        set.shard_mut(0).add_source(4, d2, sig2, del2).unwrap();
        assert!(matches!(set.handoff(4, 0, 1), Err(BdError::Corrupt(_))));
        set.flush().unwrap();
        drop(set);
        // reopen repairs from the pending journal: the recipient already
        // owns 9, so the torn handoff just completes
        let set = ShardSet::open(&dir).unwrap();
        assert!(set.poisoned().is_none());
        assert_eq!(
            set.recovered(),
            &[HandoffRecovery::Completed { source: 9, to: 1 }]
        );
        assert_eq!(set.assignment(), vec![vec![4], vec![9]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_clears_stale_export_journals() {
        let dir = tmpdir("stale_exp");
        let n = 3;
        {
            let mut set = ShardSet::create(&dir, n, 2, CodecKind::Wide).unwrap();
            let (d, sig, del) = record(n, 7);
            set.shard_mut(0).add_source(7, d, sig, del).unwrap();
            // die with the export journal durable and the source removed
            set.handoff_crashing(7, 0, 1, HandoffKill::AfterExport)
                .unwrap();
        }
        // start over in the same directory: the old incarnation's journal
        // must not resurrect source 7 into the fresh set
        {
            ShardSet::create(&dir, n, 2, CodecKind::Wide).unwrap();
        }
        let set = ShardSet::open(&dir).unwrap();
        assert!(set.recovered().is_empty(), "{:?}", set.recovered());
        assert_eq!(set.assignment(), vec![Vec::<u32>::new(), Vec::new()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_stamp_survives_handoffs_and_reopen() {
        let dir = tmpdir("stamp");
        let n = 4;
        let mut set = ShardSet::create(&dir, n, 2, CodecKind::Wide).unwrap();
        assert_eq!(set.graph_stamp(), 0, "fresh sets are unstamped");
        let (d, sig, del) = record(n, 3);
        set.shard_mut(0).add_source(3, d, sig, del).unwrap();
        set.set_graph_stamp(0xDEAD_BEEF).unwrap();
        assert_eq!(set.graph_stamp(), 0xDEAD_BEEF);
        // a handoff rewrites the manifest; the stamp must ride along
        set.handoff(3, 0, 1).unwrap();
        set.flush().unwrap();
        drop(set);
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.version(), 1);
        assert_eq!(set.graph_stamp(), 0xDEAD_BEEF);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v0_manifest_without_stamp_still_opens() {
        let dir = tmpdir("manifest_v0");
        let mut set = ShardSet::create(&dir, 3, 2, CodecKind::Wide).unwrap();
        let (d, sig, del) = record(3, 1);
        set.shard_mut(0).add_source(1, d, sig, del).unwrap();
        set.flush().unwrap();
        drop(set);
        // rewrite the manifest in the pre-extension 32-byte layout
        let mut buf = Vec::with_capacity(MANIFEST_LEN_V0);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.push(0);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let ck = fnv1a64(&buf);
        buf.extend_from_slice(&ck.to_le_bytes());
        std::fs::write(manifest_path(&dir), buf).unwrap();
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.graph_stamp(), 0, "v0 manifests read as unstamped");
        assert_eq!(set.assignment(), vec![vec![1], Vec::new()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_records_serializes_without_disturbing_ownership() {
        let dir = tmpdir("records");
        let n = 5;
        let mut set = ShardSet::create(&dir, n, 2, CodecKind::Wide).unwrap();
        for (shard, s) in [(0usize, 0u32), (1, 1), (0, 4)] {
            let (d, sig, del) = record(n, s as u64);
            set.shard_mut(shard).add_source(s, d, sig, del).unwrap();
        }
        let recs = set.shard_records(0).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.source).collect::<Vec<_>>(),
            vec![0, 4],
            "slot order"
        );
        let (d, sig, del) = record(n, 4);
        assert_eq!(recs[1].d, d);
        assert_eq!(recs[1].sigma, sig);
        assert_eq!(recs[1].delta, del);
        // iteration is read-only: ownership and version untouched
        assert_eq!(set.assignment(), vec![vec![0, 4], vec![1]]);
        assert_eq!(set.version(), 0);
        assert!(set.shard_records(1).unwrap().len() == 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_tampering_detected() {
        let dir = tmpdir("manifest");
        ShardSet::create(&dir, 2, 2, CodecKind::Wide).unwrap();
        let mpath = manifest_path(&dir);
        let mut raw = std::fs::read(&mpath).unwrap();
        raw[16] ^= 1; // flip a version bit without fixing the checksum
        std::fs::write(&mpath, raw).unwrap();
        assert!(matches!(ShardSet::open(&dir), Err(BdError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_ownership_without_journal_is_hard_error() {
        let dir = tmpdir("dup");
        let n = 3;
        let mut set = ShardSet::create(&dir, n, 2, CodecKind::Wide).unwrap();
        let (d, sig, del) = record(n, 4);
        set.shard_mut(0)
            .add_source(4, d.clone(), sig.clone(), del.clone())
            .unwrap();
        set.shard_mut(1).add_source(4, d, sig, del).unwrap();
        set.flush().unwrap();
        drop(set);
        // no pending journal can explain the duplicate: refuse to guess
        assert!(matches!(ShardSet::open(&dir), Err(BdError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
