//! Crash-injection suite: kill the store at every point of the guarded
//! `add_source` and rewrite (re-slab / migration) sequences, reopen, and
//! verify `open()` repairs the files to a consistent state — rolling the
//! torn mutation forward when its payload is durable and back when it is
//! not. Each case is one row of the DESIGN.md §7 crash matrix.

use ebc_core::bd::{BdError, BdStore};
use ebc_store::disk::{AddCrash, RewriteCrash};
use ebc_store::{CodecKind, DiskBdStore, FormatVersion, IntentOp, RecoveryAction};
use std::path::PathBuf;

/// One v1 record: `(source id, d, sigma, delta)`.
type V1Record = (u32, Vec<u32>, Vec<u64>, Vec<f64>);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_crash");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.bd", std::process::id()))
}

fn sample(n: usize, salt: u64) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
    let d = (0..n).map(|i| ((i as u64 + salt) % 5) as u32).collect();
    let sigma = (0..n).map(|i| (i as u64 + salt) % 9 + 1).collect();
    let delta = (0..n).map(|i| i as f64 * 0.5 + salt as f64).collect();
    (d, sigma, delta)
}

/// Store with two committed sources (7 and 3), flushed and dropped.
fn seeded(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::create(path, n, CodecKind::Wide).unwrap();
    for s in [7u32, 3] {
        let (d, sig, del) = sample(n, s as u64);
        st.add_source(s, d, sig, del).unwrap();
    }
    st.flush().unwrap();
}

/// Assert the reopened store matches the pre-crash two-source state and is
/// fully usable (round-trips a fresh add of the torn source).
fn assert_rolled_back(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![7, 3]);
    for s in [7u32, 3] {
        let (d, sig, del) = sample(n, s as u64);
        st.update_with(s, &mut |view| {
            assert_eq!(view.d, &d[..]);
            assert_eq!(view.sigma, &sig[..]);
            assert_eq!(view.delta, &del[..]);
            false
        })
        .unwrap();
    }
    // the rolled-back source can be re-added cleanly
    let (d, sig, del) = sample(n, 11);
    st.add_source(11, d, sig, del).unwrap();
    drop(st);
    let st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![7, 3, 11]);
    assert_eq!(st.last_recovery(), None, "commit left no pending intent");
}

/// Assert the reopened store contains the torn source with its exact
/// record.
fn assert_rolled_forward(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![7, 3, 11]);
    let (d, sig, del) = sample(n, 11);
    st.update_with(11, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

fn tear_add(path: &PathBuf, n: usize, crash: AddCrash) {
    let mut st = DiskBdStore::open(path).unwrap();
    let (d, sig, del) = sample(n, 11);
    st.add_source_crashing(11, d, sig, del, crash).unwrap();
    // dropped without commit — the simulated kill
}

#[test]
fn add_source_crash_after_intent_rolls_back() {
    let n = 6;
    let path = tmp("add_intent");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterIntent);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource))
    );
    drop(st);
    assert_rolled_back(&path, n);
}

#[test]
fn add_source_crash_mid_record_rolls_back() {
    let n = 6;
    let path = tmp("add_midrec");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::MidRecord);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource)),
        "a half-written record must never be adopted"
    );
    drop(st);
    assert_rolled_back(&path, n);
}

#[test]
fn add_source_crash_after_record_rolls_forward() {
    let n = 6;
    let path = tmp("add_rec");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterRecord);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource)),
        "a durable record (checksum verified) completes the add"
    );
    drop(st);
    assert_rolled_forward(&path, n);
}

#[test]
fn add_source_crash_after_header_rolls_forward() {
    let n = 6;
    let path = tmp("add_hdr");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterHeader);
    // this is exactly the formerly fatal state: header and sidecar disagree
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource))
    );
    drop(st);
    assert_rolled_forward(&path, n);
}

#[test]
fn add_source_crash_after_sidecar_rolls_forward() {
    let n = 6;
    let path = tmp("add_side");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterSidecar);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource))
    );
    drop(st);
    assert_rolled_forward(&path, n);
}

#[test]
fn torn_intent_record_is_discarded() {
    let n = 6;
    let path = tmp("torn_wal");
    seeded(&path, n);
    // garbage .wal: the guarded mutation never began
    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    std::fs::write(PathBuf::from(wal), b"EBCWAL\n garbage").unwrap();
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(st.last_recovery(), Some(RecoveryAction::DiscardedIntent));
    assert_eq!(st.sources(), vec![7, 3]);
}

#[test]
fn reslab_crash_after_intent_rolls_back() {
    let n = 4;
    let path = tmp("reslab_intent");
    {
        // zero headroom so the next growth must re-slab
        let mut st = DiskBdStore::create_with_capacity(&path, n, n, CodecKind::Wide).unwrap();
        let (d, sig, del) = sample(n, 1);
        st.add_source(0, d, sig, del).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterIntent).unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::Reslab))
    );
    assert_eq!(st.n(), n, "growth never became visible");
    assert_eq!(st.capacity(), n);
}

#[test]
fn reslab_crash_after_tmp_rolls_back_and_removes_tmp() {
    let n = 4;
    let path = tmp("reslab_tmp");
    {
        let mut st = DiskBdStore::create_with_capacity(&path, n, n, CodecKind::Wide).unwrap();
        let (d, sig, del) = sample(n, 2);
        st.add_source(0, d, sig, del).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterTmp).unwrap();
    }
    assert!(
        path.with_extension("tmp").exists(),
        "crash left the tmp file"
    );
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::Reslab))
    );
    assert!(!path.with_extension("tmp").exists(), "recovery cleans up");
    assert_eq!(st.n(), n);
    let (d, sig, del) = sample(n, 2);
    st.update_with(0, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

#[test]
fn reslab_crash_after_rename_rolls_forward() {
    let n = 4;
    let path = tmp("reslab_rename");
    {
        let mut st = DiskBdStore::create_with_capacity(&path, n, n, CodecKind::Wide).unwrap();
        let (d, sig, del) = sample(n, 3);
        st.add_source(0, d, sig, del).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterRename).unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::Reslab))
    );
    assert_eq!(st.n(), n + 1, "the renamed file carries the grown geometry");
    assert!(st.capacity() > n + 1);
    let (d, sig, del) = sample(n, 3);
    st.update_with(0, &mut |view| {
        assert_eq!(&view.d[..n], &d[..]);
        assert_eq!(view.d[n], ebc_graph::UNREACHABLE);
        assert_eq!(&view.sigma[..n], &sig[..]);
        assert_eq!(&view.delta[..n], &del[..]);
        false
    })
    .unwrap();
}

/// Build a legacy v1 file by hand (the documented 24-byte-header layout).
fn write_v1_file(path: &PathBuf, codec: CodecKind, n: usize, records: &[V1Record]) {
    let mut data = Vec::new();
    data.extend_from_slice(b"EBCBD1\n");
    data.push(codec.id());
    data.extend_from_slice(&(n as u64).to_le_bytes());
    data.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let mut buf = vec![0u8; codec.record_size(n)];
    for (_, d, sig, del) in records {
        codec.encode_record(d, sig, del, &mut buf);
        data.extend_from_slice(&buf);
    }
    std::fs::write(path, data).unwrap();
    let mut idx = Vec::new();
    idx.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (s, ..) in records {
        idx.extend_from_slice(&s.to_le_bytes());
    }
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(".idx");
    std::fs::write(PathBuf::from(sidecar), idx).unwrap();
}

#[test]
fn migration_crash_before_rename_leaves_readable_v1() {
    let n = 5;
    let path = tmp("migrate_tear");
    let (d, sig, del) = sample(n, 4);
    write_v1_file(&path, CodecKind::Wide, n, &[(2, d.clone(), sig, del)]);
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        assert_eq!(st.version(), FormatVersion::V1);
        st.grow_vertex_crashing(RewriteCrash::AfterTmp).unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::Migrate))
    );
    assert_eq!(st.version(), FormatVersion::V1, "still the old format");
    assert_eq!(st.peek_pair(2, 0, 1).unwrap(), (d[0], d[1]));
}

#[test]
fn migration_crash_after_rename_completes_v2() {
    let n = 5;
    let path = tmp("migrate_fwd");
    let (d, sig, del) = sample(n, 5);
    write_v1_file(
        &path,
        CodecKind::Wide,
        n,
        &[(2, d.clone(), sig.clone(), del.clone())],
    );
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterRename).unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::Migrate))
    );
    assert_eq!(st.version(), FormatVersion::V2);
    assert!(st.headroom() > 0);
    st.update_with(2, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

#[test]
fn double_crash_recovery_is_idempotent() {
    // recover, then crash the *next* mutation too: each reopen must repair
    // independently
    let n = 6;
    let path = tmp("double");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterHeader);
    {
        let st = DiskBdStore::open(&path).unwrap();
        assert!(matches!(
            st.last_recovery(),
            Some(RecoveryAction::RolledForward(IntentOp::AddSource))
        ));
    }
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        let (d, sig, del) = sample(n, 12);
        st.add_source_crashing(12, d, sig, del, AddCrash::MidRecord)
            .unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource))
    );
    assert_eq!(st.sources(), vec![7, 3, 11]);
}

#[test]
fn stale_intent_with_clean_files_is_harmless() {
    // AfterSidecar tear twice in a row exercises the "sidecar already new"
    // branch; a second reopen after recovery sees no intent at all
    let n = 6;
    let path = tmp("stale");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterSidecar);
    {
        DiskBdStore::open(&path).unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        None,
        "first recovery cleared the intent"
    );
    assert_eq!(st.sources(), vec![7, 3, 11]);
}

#[test]
fn unrecoverable_states_still_error() {
    // no intent + header/sidecar disagreement must stay a hard error (it
    // cannot be attributed to a known torn mutation)
    let n = 6;
    let path = tmp("hard_err");
    seeded(&path, n);
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(".idx");
    let mut idx = std::fs::read(PathBuf::from(sidecar.clone())).unwrap();
    idx[0] += 1; // count 2 → 3 without any intent
    std::fs::write(PathBuf::from(sidecar), idx).unwrap();
    assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
}
