//! Crash-injection suite: kill the store at every point of the guarded
//! `add_source`, rewrite (re-slab / migration), and `remove_source`
//! sequences — plus the sharded handoff protocol at every window between
//! donor-export journal, recipient import, and map commit — reopen, and
//! verify `open()` repairs the files to a consistent state. Each
//! single-store case is one row of the DESIGN.md §7 crash matrix; each
//! handoff case is one row of the §8 matrix, whose acceptance bar is that
//! the mid-handoff source ends up **owned by exactly one shard**.

use ebc_core::bd::{BdError, BdStore};
use ebc_store::disk::{AddCrash, ExportCrash, RemoveCrash, RewriteCrash};
use ebc_store::shard::{HandoffKill, HandoffRecovery};
use ebc_store::{CodecKind, DiskBdStore, FormatVersion, IntentOp, RecoveryAction, ShardSet};
use std::path::PathBuf;

/// One v1 record: `(source id, d, sigma, delta)`.
type V1Record = (u32, Vec<u32>, Vec<u64>, Vec<f64>);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_crash");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.bd", std::process::id()))
}

fn sample(n: usize, salt: u64) -> (Vec<u32>, Vec<u64>, Vec<f64>) {
    let d = (0..n).map(|i| ((i as u64 + salt) % 5) as u32).collect();
    let sigma = (0..n).map(|i| (i as u64 + salt) % 9 + 1).collect();
    let delta = (0..n).map(|i| i as f64 * 0.5 + salt as f64).collect();
    (d, sigma, delta)
}

/// Store with two committed sources (7 and 3), flushed and dropped.
fn seeded(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::create(path, n, CodecKind::Wide).unwrap();
    for s in [7u32, 3] {
        let (d, sig, del) = sample(n, s as u64);
        st.add_source(s, d, sig, del).unwrap();
    }
    st.flush().unwrap();
}

/// Assert the reopened store matches the pre-crash two-source state and is
/// fully usable (round-trips a fresh add of the torn source).
fn assert_rolled_back(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![7, 3]);
    for s in [7u32, 3] {
        let (d, sig, del) = sample(n, s as u64);
        st.update_with(s, &mut |view| {
            assert_eq!(view.d, &d[..]);
            assert_eq!(view.sigma, &sig[..]);
            assert_eq!(view.delta, &del[..]);
            false
        })
        .unwrap();
    }
    // the rolled-back source can be re-added cleanly
    let (d, sig, del) = sample(n, 11);
    st.add_source(11, d, sig, del).unwrap();
    drop(st);
    let st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![7, 3, 11]);
    assert_eq!(st.last_recovery(), None, "commit left no pending intent");
}

/// Assert the reopened store contains the torn source with its exact
/// record.
fn assert_rolled_forward(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![7, 3, 11]);
    let (d, sig, del) = sample(n, 11);
    st.update_with(11, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

fn tear_add(path: &PathBuf, n: usize, crash: AddCrash) {
    let mut st = DiskBdStore::open(path).unwrap();
    let (d, sig, del) = sample(n, 11);
    st.add_source_crashing(11, d, sig, del, crash).unwrap();
    // dropped without commit — the simulated kill
}

#[test]
fn add_source_crash_after_intent_rolls_back() {
    let n = 6;
    let path = tmp("add_intent");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterIntent);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource))
    );
    drop(st);
    assert_rolled_back(&path, n);
}

#[test]
fn add_source_crash_mid_record_rolls_back() {
    let n = 6;
    let path = tmp("add_midrec");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::MidRecord);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource)),
        "a half-written record must never be adopted"
    );
    drop(st);
    assert_rolled_back(&path, n);
}

#[test]
fn add_source_crash_after_record_rolls_forward() {
    let n = 6;
    let path = tmp("add_rec");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterRecord);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource)),
        "a durable record (checksum verified) completes the add"
    );
    drop(st);
    assert_rolled_forward(&path, n);
}

#[test]
fn add_source_crash_after_header_rolls_forward() {
    let n = 6;
    let path = tmp("add_hdr");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterHeader);
    // this is exactly the formerly fatal state: header and sidecar disagree
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource))
    );
    drop(st);
    assert_rolled_forward(&path, n);
}

#[test]
fn add_source_crash_after_sidecar_rolls_forward() {
    let n = 6;
    let path = tmp("add_side");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterSidecar);
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource))
    );
    drop(st);
    assert_rolled_forward(&path, n);
}

#[test]
fn torn_intent_record_is_discarded() {
    let n = 6;
    let path = tmp("torn_wal");
    seeded(&path, n);
    // garbage .wal: the guarded mutation never began
    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    std::fs::write(PathBuf::from(wal), b"EBCWAL\n garbage").unwrap();
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(st.last_recovery(), Some(RecoveryAction::DiscardedIntent));
    assert_eq!(st.sources(), vec![7, 3]);
}

#[test]
fn reslab_crash_after_intent_rolls_back() {
    let n = 4;
    let path = tmp("reslab_intent");
    {
        // zero headroom so the next growth must re-slab
        let mut st = DiskBdStore::create_with_capacity(&path, n, n, CodecKind::Wide).unwrap();
        let (d, sig, del) = sample(n, 1);
        st.add_source(0, d, sig, del).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterIntent).unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::Reslab))
    );
    assert_eq!(st.n(), n, "growth never became visible");
    assert_eq!(st.capacity(), n);
}

#[test]
fn reslab_crash_after_tmp_rolls_back_and_removes_tmp() {
    let n = 4;
    let path = tmp("reslab_tmp");
    {
        let mut st = DiskBdStore::create_with_capacity(&path, n, n, CodecKind::Wide).unwrap();
        let (d, sig, del) = sample(n, 2);
        st.add_source(0, d, sig, del).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterTmp).unwrap();
    }
    assert!(
        path.with_extension("tmp").exists(),
        "crash left the tmp file"
    );
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::Reslab))
    );
    assert!(!path.with_extension("tmp").exists(), "recovery cleans up");
    assert_eq!(st.n(), n);
    let (d, sig, del) = sample(n, 2);
    st.update_with(0, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

#[test]
fn reslab_crash_after_rename_rolls_forward() {
    let n = 4;
    let path = tmp("reslab_rename");
    {
        let mut st = DiskBdStore::create_with_capacity(&path, n, n, CodecKind::Wide).unwrap();
        let (d, sig, del) = sample(n, 3);
        st.add_source(0, d, sig, del).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterRename).unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::Reslab))
    );
    assert_eq!(st.n(), n + 1, "the renamed file carries the grown geometry");
    assert!(st.capacity() > n + 1);
    let (d, sig, del) = sample(n, 3);
    st.update_with(0, &mut |view| {
        assert_eq!(&view.d[..n], &d[..]);
        assert_eq!(view.d[n], ebc_graph::UNREACHABLE);
        assert_eq!(&view.sigma[..n], &sig[..]);
        assert_eq!(&view.delta[..n], &del[..]);
        false
    })
    .unwrap();
}

/// Build a legacy v1 file by hand (the documented 24-byte-header layout).
fn write_v1_file(path: &PathBuf, codec: CodecKind, n: usize, records: &[V1Record]) {
    let mut data = Vec::new();
    data.extend_from_slice(b"EBCBD1\n");
    data.push(codec.id());
    data.extend_from_slice(&(n as u64).to_le_bytes());
    data.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let mut buf = vec![0u8; codec.record_size(n)];
    for (_, d, sig, del) in records {
        codec.encode_record(d, sig, del, &mut buf);
        data.extend_from_slice(&buf);
    }
    std::fs::write(path, data).unwrap();
    let mut idx = Vec::new();
    idx.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (s, ..) in records {
        idx.extend_from_slice(&s.to_le_bytes());
    }
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(".idx");
    std::fs::write(PathBuf::from(sidecar), idx).unwrap();
}

#[test]
fn migration_crash_before_rename_leaves_readable_v1() {
    let n = 5;
    let path = tmp("migrate_tear");
    let (d, sig, del) = sample(n, 4);
    write_v1_file(&path, CodecKind::Wide, n, &[(2, d.clone(), sig, del)]);
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        assert_eq!(st.version(), FormatVersion::V1);
        st.grow_vertex_crashing(RewriteCrash::AfterTmp).unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::Migrate))
    );
    assert_eq!(st.version(), FormatVersion::V1, "still the old format");
    assert_eq!(st.peek_pair(2, 0, 1).unwrap(), (d[0], d[1]));
}

#[test]
fn migration_crash_after_rename_completes_v2() {
    let n = 5;
    let path = tmp("migrate_fwd");
    let (d, sig, del) = sample(n, 5);
    write_v1_file(
        &path,
        CodecKind::Wide,
        n,
        &[(2, d.clone(), sig.clone(), del.clone())],
    );
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        st.grow_vertex_crashing(RewriteCrash::AfterRename).unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::Migrate))
    );
    assert_eq!(st.version(), FormatVersion::V2);
    assert!(st.headroom() > 0);
    st.update_with(2, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

#[test]
fn double_crash_recovery_is_idempotent() {
    // recover, then crash the *next* mutation too: each reopen must repair
    // independently
    let n = 6;
    let path = tmp("double");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterHeader);
    {
        let st = DiskBdStore::open(&path).unwrap();
        assert!(matches!(
            st.last_recovery(),
            Some(RecoveryAction::RolledForward(IntentOp::AddSource))
        ));
    }
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        let (d, sig, del) = sample(n, 12);
        st.add_source_crashing(12, d, sig, del, AddCrash::MidRecord)
            .unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource))
    );
    assert_eq!(st.sources(), vec![7, 3, 11]);
}

#[test]
fn stale_intent_with_clean_files_is_harmless() {
    // AfterSidecar tear twice in a row exercises the "sidecar already new"
    // branch; a second reopen after recovery sees no intent at all
    let n = 6;
    let path = tmp("stale");
    seeded(&path, n);
    tear_add(&path, n, AddCrash::AfterSidecar);
    {
        DiskBdStore::open(&path).unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        None,
        "first recovery cleared the intent"
    );
    assert_eq!(st.sources(), vec![7, 3, 11]);
}

/// Removal kills: every kill point must roll *forward* (the removal's
/// inputs survive until the final truncate, and the intent is only written
/// once the caller has secured the record elsewhere).
fn assert_removal_completed(path: &PathBuf, n: usize) {
    let mut st = DiskBdStore::open(path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::RemoveSource))
    );
    assert_eq!(st.sources(), vec![3], "survivor after swap-remove of 7");
    // the swapped record (source 3 moved into slot 0) is bit-intact
    let (d, sig, del) = sample(n, 3);
    st.update_with(3, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
    // the removed source is gone and can be freshly re-added
    assert!(matches!(
        st.peek_pair(7, 0, 1),
        Err(BdError::UnknownSource(7))
    ));
    let (d, sig, del) = sample(n, 7);
    st.add_source(7, d, sig, del).unwrap();
    drop(st);
    let st = DiskBdStore::open(path).unwrap();
    assert_eq!(st.sources(), vec![3, 7]);
    assert_eq!(st.last_recovery(), None);
}

#[test]
fn remove_source_crashes_all_roll_forward() {
    let n = 6;
    for (name, crash) in [
        ("rm_intent", RemoveCrash::AfterIntent),
        ("rm_copy", RemoveCrash::AfterCopy),
        ("rm_hdr", RemoveCrash::AfterHeader),
        ("rm_side", RemoveCrash::AfterSidecar),
    ] {
        let path = tmp(name);
        seeded(&path, n);
        {
            let mut st = DiskBdStore::open(&path).unwrap();
            st.remove_source_crashing(7, crash).unwrap();
        }
        assert_removal_completed(&path, n);
    }
}

#[test]
fn remove_source_crash_on_last_slot_needs_no_copy() {
    let n = 6;
    let path = tmp("rm_last");
    seeded(&path, n); // sources [7, 3]; 3 occupies the last slot
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        st.remove_source_crashing(3, RemoveCrash::AfterIntent)
            .unwrap();
    }
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        st.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::RemoveSource))
    );
    assert_eq!(st.sources(), vec![7]);
    let (d, sig, del) = sample(n, 7);
    st.update_with(7, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
}

#[test]
fn export_crash_after_journal_leaves_source_owned() {
    // the export journal is durable but the removal never began: a plain
    // single-store reopen sees the source untouched (the journal is a
    // shard-level concern the ShardSet resolves)
    let n = 6;
    let path = tmp("exp_journal");
    seeded(&path, n);
    {
        let mut st = DiskBdStore::open(&path).unwrap();
        st.export_source_crashing(7, 1, ExportCrash::AfterJournal)
            .unwrap();
    }
    let st = DiskBdStore::open(&path).unwrap();
    assert_eq!(st.last_recovery(), None, "no WAL intent was written");
    assert_eq!(st.sources(), vec![7, 3]);
    let pending = ebc_store::disk::pending_exports(&path).unwrap();
    assert_eq!(pending.len(), 1, "the journal awaits shard-level recovery");
    let journal = ebc_store::disk::read_export_journal(&pending[0])
        .unwrap()
        .expect("journal parses");
    assert_eq!(journal.source, 7);
    assert_eq!(journal.tag, 1);
    let (d, sig, del) = sample(n, 7);
    assert_eq!(journal.d, d);
    assert_eq!(journal.sigma, sig);
    assert_eq!(journal.delta, del);
}

// ---- sharded handoff crash matrix (DESIGN.md §8) ----

fn shard_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ebc_shard_crash")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two shards, shard 0 owning {7, 3}, shard 1 owning {5}, flushed.
fn seeded_set(dir: &PathBuf, n: usize) {
    let mut set = ShardSet::create(dir, n, 2, CodecKind::Wide).unwrap();
    for (shard, s) in [(0usize, 7u32), (0, 3), (1, 5)] {
        let (d, sig, del) = sample(n, s as u64);
        set.shard_mut(shard).add_source(s, d, sig, del).unwrap();
    }
    set.flush().unwrap();
}

/// Every source of the seeded set is owned by exactly one shard, and every
/// record (including the mid-handoff one, wherever it landed) is
/// bit-intact.
fn assert_exactly_once_and_intact(set: &mut ShardSet, n: usize) {
    let assignment = set.assignment();
    for s in [7u32, 3, 5] {
        let owners: Vec<usize> = (0..set.num_shards())
            .filter(|&k| assignment[k].contains(&s))
            .collect();
        assert_eq!(owners.len(), 1, "source {s} owned by {owners:?}");
        let (d, sig, del) = sample(n, s as u64);
        set.shard_mut(owners[0])
            .update_with(s, &mut |view| {
                assert_eq!(view.d, &d[..], "source {s} distances");
                assert_eq!(view.sigma, &sig[..], "source {s} sigma");
                assert_eq!(view.delta, &del[..], "source {s} delta");
                false
            })
            .unwrap();
    }
}

#[test]
fn handoff_kill_after_export_journal_rolls_back() {
    let n = 5;
    let dir = shard_dir("ho_journal");
    seeded_set(&dir, n);
    {
        let mut set = ShardSet::open(&dir).unwrap();
        set.handoff_crashing(7, 0, 1, HandoffKill::AfterExportJournal)
            .unwrap();
    }
    let mut set = ShardSet::open(&dir).unwrap();
    assert_eq!(
        set.recovered(),
        &[HandoffRecovery::RolledBack {
            source: 7,
            donor: 0
        }]
    );
    assert_eq!(set.version(), 0, "nothing committed");
    assert_eq!(set.assignment()[0], vec![7, 3], "donor still owns 7");
    assert_exactly_once_and_intact(&mut set, n);
    drop(set);
    let set = ShardSet::open(&dir).unwrap();
    assert!(set.recovered().is_empty(), "recovery is not re-run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn handoff_kill_after_export_reinstalls_from_journal() {
    // the kill window where the source is owned by *nobody* on disk: only
    // the journal payload can resurrect it
    let n = 5;
    let dir = shard_dir("ho_export");
    seeded_set(&dir, n);
    {
        let mut set = ShardSet::open(&dir).unwrap();
        set.handoff_crashing(7, 0, 1, HandoffKill::AfterExport)
            .unwrap();
    }
    let mut set = ShardSet::open(&dir).unwrap();
    assert_eq!(
        set.recovered(),
        &[HandoffRecovery::Reinstalled { source: 7, to: 1 }]
    );
    assert!(set.version() >= 1, "the completed handoff is committed");
    assert!(set.assignment()[1].contains(&7), "recipient owns 7");
    assert_exactly_once_and_intact(&mut set, n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn handoff_kill_after_import_completes_the_commit() {
    let n = 5;
    let dir = shard_dir("ho_import");
    seeded_set(&dir, n);
    {
        let mut set = ShardSet::open(&dir).unwrap();
        set.handoff_crashing(7, 0, 1, HandoffKill::AfterImport)
            .unwrap();
    }
    let mut set = ShardSet::open(&dir).unwrap();
    assert_eq!(
        set.recovered(),
        &[HandoffRecovery::Completed { source: 7, to: 1 }]
    );
    assert!(set.version() >= 1);
    assert!(set.assignment()[1].contains(&7));
    assert_exactly_once_and_intact(&mut set, n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn handoff_kill_after_map_commit_retires_the_journal() {
    let n = 5;
    let dir = shard_dir("ho_commit");
    seeded_set(&dir, n);
    {
        let mut set = ShardSet::open(&dir).unwrap();
        set.handoff_crashing(7, 0, 1, HandoffKill::AfterMapCommit)
            .unwrap();
    }
    let mut set = ShardSet::open(&dir).unwrap();
    assert_eq!(
        set.recovered(),
        &[HandoffRecovery::Completed { source: 7, to: 1 }]
    );
    // version is monotonic; recovery may advance it past the manifest's 1
    assert!(set.version() >= 1);
    assert!(set.assignment()[1].contains(&7));
    assert_exactly_once_and_intact(&mut set, n);
    drop(set);
    let set = ShardSet::open(&dir).unwrap();
    assert!(set.recovered().is_empty(), "journal gone after recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn double_kill_export_then_remove_converges() {
    // kill during the handoff's donor removal (not just between protocol
    // steps): the per-shard WAL rolls the removal forward, then the shard
    // layer sees an ownerless source and reinstalls it at the recipient
    let n = 5;
    let dir = shard_dir("ho_double");
    seeded_set(&dir, n);
    {
        let mut set = ShardSet::open(&dir).unwrap();
        // export journal durable...
        set.shard_mut(0)
            .export_source_crashing(7, 1, ExportCrash::AfterJournal)
            .unwrap();
    }
    {
        // ...then the removal itself dies halfway
        let mut st = DiskBdStore::open(dir.join("shard-0.ebc")).unwrap();
        st.remove_source_crashing(7, RemoveCrash::AfterHeader)
            .unwrap();
    }
    let mut set = ShardSet::open(&dir).unwrap();
    assert_eq!(
        set.recovered(),
        &[HandoffRecovery::Reinstalled { source: 7, to: 1 }]
    );
    assert_exactly_once_and_intact(&mut set, n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecoverable_states_still_error() {
    // no intent + header/sidecar disagreement must stay a hard error (it
    // cannot be attributed to a known torn mutation)
    let n = 6;
    let path = tmp("hard_err");
    seeded(&path, n);
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(".idx");
    let mut idx = std::fs::read(PathBuf::from(sidecar.clone())).unwrap();
    idx[0] += 1; // count 2 → 3 without any intent
    std::fs::write(PathBuf::from(sidecar), idx).unwrap();
    assert!(matches!(DiskBdStore::open(&path), Err(BdError::Corrupt(_))));
}
