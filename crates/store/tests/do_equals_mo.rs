//! The out-of-core (DO) configuration must produce *identical* results to
//! the in-memory (MO) one — same kernel, different storage. This is the
//! correctness half of the paper's Figure 5 comparison.

use ebc_core::bd::BdStore;
use ebc_core::brandes::{single_source_update_with, BrandesScratch};
use ebc_core::scores::Scores;
use ebc_core::state::{BetweennessState, Update};
use ebc_core::verify::assert_matches_scratch;
use ebc_core::UpdateConfig;
use ebc_graph::Graph;
use ebc_store::disk::AddCrash;
use ebc_store::{CodecKind, DiskBdStore, IntentOp, RecoveryAction};

fn ring_with_chords(n: u32) -> Graph {
    let mut g = Graph::with_vertices(n as usize);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n).unwrap();
    }
    for i in (0..n).step_by(5) {
        let j = (i + n / 2) % n;
        if !g.has_edge(i, j) {
            g.add_edge(i, j).unwrap();
        }
    }
    g
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn disk_backed_state_tracks_memory_state() {
    let g = ring_with_chords(24);
    let disk = DiskBdStore::create(tmp("do_eq_mo.dat"), g.n(), CodecKind::Wide).unwrap();
    let mut mo = BetweennessState::new(&g);
    let mut dob =
        BetweennessState::new_into_store(g.clone(), disk, UpdateConfig::default()).unwrap();

    let script = [
        Update::add(0, 7),
        Update::add(3, 18),
        Update::remove(0, 12),
        Update::remove(2, 3),
        Update::add(1, 13),
        Update::remove(0, 1),
    ];
    for (i, u) in script.into_iter().enumerate() {
        mo.apply(u).unwrap();
        dob.apply(u).unwrap();
        let ctx = format!("step {i}");
        assert_matches_scratch(dob.graph(), dob.scores(), 1e-6, &ctx);
        assert!(
            mo.scores().max_vbc_diff(dob.scores()) < 1e-12,
            "{ctx}: MO and DO diverged"
        );
        assert!(
            mo.scores().max_ebc_diff(dob.scores(), mo.graph()) < 1e-12,
            "{ctx}: EBC"
        );
    }
}

#[test]
fn disk_backed_state_handles_new_vertices() {
    let g = ring_with_chords(12);
    let disk = DiskBdStore::create(tmp("do_new_vertex.dat"), g.n(), CodecKind::Wide).unwrap();
    let mut st =
        BetweennessState::new_into_store(g.clone(), disk, UpdateConfig::default()).unwrap();
    st.apply(Update::add(3, 12)).unwrap(); // vertex 12 arrives, file is rewritten
    st.apply(Update::add(12, 7)).unwrap();
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, "after growth");
}

/// Bootstrap `g` into a fresh disk store at `path`, tearing the very last
/// `add_source` at `crash` (simulated kill).
fn bootstrap_torn(g: &Graph, path: &std::path::Path, crash: AddCrash) {
    let mut store = DiskBdStore::create(path, g.n(), CodecKind::Wide).unwrap();
    let mut scores = Scores::zeros_for(g);
    let mut scratch = BrandesScratch::new(g.n());
    let last = (g.n() - 1) as u32;
    for s in 0..last {
        let r = single_source_update_with(g, s, &mut scores, &mut scratch);
        store.add_source(s, r.d, r.sigma, r.delta).unwrap();
    }
    let r = single_source_update_with(g, last, &mut scores, &mut scratch);
    store
        .add_source_crashing(last, r.d, r.sigma, r.delta, crash)
        .unwrap();
}

fn drive_and_compare(g: &Graph, mut dob: BetweennessState<DiskBdStore>) {
    let mut mo = BetweennessState::new(g);
    // resumed scores come from the exact reduction; MO's incremental ones
    // agree up to floating-point summation order
    assert!(mo.scores().max_vbc_diff(dob.scores()) < 1e-9);
    let script = [
        Update::add(0, 9),
        Update::remove(1, 2),
        Update::add(4, 15),
        Update::remove(0, 1),
    ];
    for (i, u) in script.into_iter().enumerate() {
        mo.apply(u).unwrap();
        dob.apply(u).unwrap();
        let ctx = format!("recovered step {i}");
        assert_matches_scratch(dob.graph(), dob.scores(), 1e-6, &ctx);
        assert!(
            mo.scores().max_vbc_diff(dob.scores()) < 1e-9,
            "{ctx}: MO and recovered DO diverged"
        );
        assert!(
            mo.scores().max_ebc_diff(dob.scores(), mo.graph()) < 1e-9,
            "{ctx}: EBC"
        );
    }
}

#[test]
fn store_torn_mid_add_source_recovers_forward_and_matches_mo() {
    let g = ring_with_chords(20);
    let path = tmp("do_recover_fwd.dat");
    bootstrap_torn(&g, &path, AddCrash::AfterRecord);
    let store = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        store.last_recovery(),
        Some(RecoveryAction::RolledForward(IntentOp::AddSource))
    );
    assert_eq!(store.num_sources(), g.n(), "the durable record was adopted");
    let dob = BetweennessState::resume(g.clone(), store, UpdateConfig::default()).unwrap();
    drive_and_compare(&g, dob);
}

#[test]
fn store_torn_mid_add_source_recovers_back_and_matches_mo() {
    let g = ring_with_chords(20);
    let path = tmp("do_recover_back.dat");
    bootstrap_torn(&g, &path, AddCrash::MidRecord);
    let mut store = DiskBdStore::open(&path).unwrap();
    assert_eq!(
        store.last_recovery(),
        Some(RecoveryAction::RolledBack(IntentOp::AddSource))
    );
    assert_eq!(
        store.num_sources(),
        g.n() - 1,
        "the torn record was dropped"
    );
    // redo the lost bootstrap iteration, then everything must line up
    let mut scores = Scores::zeros_for(&g);
    let mut scratch = BrandesScratch::new(g.n());
    let last = (g.n() - 1) as u32;
    let r = single_source_update_with(&g, last, &mut scores, &mut scratch);
    store.add_source(last, r.d, r.sigma, r.delta).unwrap();
    let dob = BetweennessState::resume(g.clone(), store, UpdateConfig::default()).unwrap();
    drive_and_compare(&g, dob);
}

#[test]
fn paper_codec_is_exact_on_small_graphs() {
    // Within its ranges (d ≤ 254, σ ≤ 65534) the paper's 11-byte codec is
    // exact, so DO-with-paper-codec must match recomputation too.
    let g = ring_with_chords(16);
    let disk = DiskBdStore::create(tmp("do_paper.dat"), g.n(), CodecKind::Paper).unwrap();
    let mut st =
        BetweennessState::new_into_store(g.clone(), disk, UpdateConfig::default()).unwrap();
    st.apply(Update::add(1, 9)).unwrap();
    st.apply(Update::remove(0, 8)).unwrap();
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, "paper codec");
}
