//! The out-of-core (DO) configuration must produce *identical* results to
//! the in-memory (MO) one — same kernel, different storage. This is the
//! correctness half of the paper's Figure 5 comparison.

use ebc_core::state::{BetweennessState, Update};
use ebc_core::verify::assert_matches_scratch;
use ebc_core::UpdateConfig;
use ebc_graph::Graph;
use ebc_store::{CodecKind, DiskBdStore};

fn ring_with_chords(n: u32) -> Graph {
    let mut g = Graph::with_vertices(n as usize);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n).unwrap();
    }
    for i in (0..n).step_by(5) {
        let j = (i + n / 2) % n;
        if !g.has_edge(i, j) {
            g.add_edge(i, j).unwrap();
        }
    }
    g
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn disk_backed_state_tracks_memory_state() {
    let g = ring_with_chords(24);
    let disk = DiskBdStore::create(tmp("do_eq_mo.dat"), g.n(), CodecKind::Wide).unwrap();
    let mut mo = BetweennessState::init(&g);
    let mut dob =
        BetweennessState::init_into_store(g.clone(), disk, UpdateConfig::default()).unwrap();

    let script = [
        Update::add(0, 7),
        Update::add(3, 18),
        Update::remove(0, 12),
        Update::remove(2, 3),
        Update::add(1, 13),
        Update::remove(0, 1),
    ];
    for (i, u) in script.into_iter().enumerate() {
        mo.apply(u).unwrap();
        dob.apply(u).unwrap();
        let ctx = format!("step {i}");
        assert_matches_scratch(dob.graph(), dob.scores(), 1e-6, &ctx);
        assert!(
            mo.scores().max_vbc_diff(dob.scores()) < 1e-12,
            "{ctx}: MO and DO diverged"
        );
        assert!(
            mo.scores().max_ebc_diff(dob.scores(), mo.graph()) < 1e-12,
            "{ctx}: EBC"
        );
    }
}

#[test]
fn disk_backed_state_handles_new_vertices() {
    let g = ring_with_chords(12);
    let disk = DiskBdStore::create(tmp("do_new_vertex.dat"), g.n(), CodecKind::Wide).unwrap();
    let mut st =
        BetweennessState::init_into_store(g.clone(), disk, UpdateConfig::default()).unwrap();
    st.apply(Update::add(3, 12)).unwrap(); // vertex 12 arrives, file is rewritten
    st.apply(Update::add(12, 7)).unwrap();
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, "after growth");
}

#[test]
fn paper_codec_is_exact_on_small_graphs() {
    // Within its ranges (d ≤ 254, σ ≤ 65534) the paper's 11-byte codec is
    // exact, so DO-with-paper-codec must match recomputation too.
    let g = ring_with_chords(16);
    let disk = DiskBdStore::create(tmp("do_paper.dat"), g.n(), CodecKind::Paper).unwrap();
    let mut st =
        BetweennessState::init_into_store(g.clone(), disk, UpdateConfig::default()).unwrap();
    st.apply(Update::add(1, 9)).unwrap();
    st.apply(Update::remove(0, 8)).unwrap();
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, "paper codec");
}
