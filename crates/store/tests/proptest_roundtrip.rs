//! Property tests for the on-disk store: arbitrary records must round-trip
//! bit-exactly through the wide codec, survive reopen, and tolerate
//! interleaved peeks/updates; random corruption must be detected, never
//! silently accepted as valid data.

use ebc_core::bd::{BdError, BdStore};
use ebc_graph::UNREACHABLE;
use ebc_store::{CodecKind, DiskBdStore};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{case}_{}.bd", std::process::id()))
}

fn record_strategy(n: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u64>, Vec<f64>)> {
    (
        proptest::collection::vec(prop_oneof![3 => 0u32..1000, 1 => Just(UNREACHABLE)], n..=n),
        proptest::collection::vec(any::<u64>(), n..=n),
        proptest::collection::vec(-1e12f64..1e12, n..=n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn wide_codec_roundtrips_arbitrary_records(
        case in any::<u64>(),
        records in proptest::collection::vec(record_strategy(12), 1..6),
    ) {
        let path = tmp("roundtrip", case);
        let mut store = DiskBdStore::create(&path, 12, CodecKind::Wide).unwrap();
        for (i, (d, s, del)) in records.iter().enumerate() {
            store.add_source(i as u32, d.clone(), s.clone(), del.clone()).unwrap();
        }
        // reopen and verify every record bit-exactly
        drop(store);
        let mut store = DiskBdStore::open(&path).unwrap();
        for (i, (d, s, del)) in records.iter().enumerate() {
            store.update_with(i as u32, &mut |view| {
                assert_eq!(view.d, &d[..]);
                assert_eq!(view.sigma, &s[..]);
                assert_eq!(view.delta, &del[..]);
                false
            }).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn peeks_agree_with_full_views(
        case in any::<u64>(),
        (d, s, del) in record_strategy(16),
        a in 0u32..16,
        b in 0u32..16,
    ) {
        let path = tmp("peek", case);
        let mut store = DiskBdStore::create(&path, 16, CodecKind::Wide).unwrap();
        store.add_source(7, d.clone(), s, del).unwrap();
        let (da, db) = store.peek_pair(7, a, b).unwrap();
        prop_assert_eq!(da, d[a as usize]);
        prop_assert_eq!(db, d[b as usize]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_always_detected(
        case in any::<u64>(),
        (d, s, del) in record_strategy(8),
        cut in 1usize..64,
    ) {
        let path = tmp("trunc", case);
        {
            let mut store = DiskBdStore::create(&path, 8, CodecKind::Wide).unwrap();
            store.add_source(0, d, s, del).unwrap();
            store.flush().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        let cut = cut.min(raw.len() - 1);
        std::fs::write(&path, &raw[..raw.len() - cut]).unwrap();
        match DiskBdStore::open(&path) {
            Err(BdError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "truncated store opened successfully"),
        }
        std::fs::remove_file(&path).ok();
    }
}
