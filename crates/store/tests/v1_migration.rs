//! Backward compatibility: legacy v1 files (fixed layout, 24-byte header)
//! must stay readable, and the first write-capable operation must migrate
//! them to the v2 slab layout with every record's live prefix preserved
//! **bit-identically**.

use ebc_core::bd::BdStore;
use ebc_graph::UNREACHABLE;
use ebc_store::{CodecKind, DiskBdStore, FormatVersion};
use proptest::prelude::*;
use std::path::PathBuf;

/// One v1 record: `(source id, d, sigma, delta)`.
type V1Record = (u32, Vec<u32>, Vec<u64>, Vec<f64>);

fn tmp(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("ebc_store_migration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{case}_{}.bd", std::process::id()))
}

/// Hand-write a legacy v1 store (the documented pre-slab format): 24-byte
/// header, records at stride `record_size(n)`, plain sidecar.
fn write_v1_file(path: &PathBuf, codec: CodecKind, n: usize, records: &[V1Record]) {
    let mut data = Vec::new();
    data.extend_from_slice(b"EBCBD1\n");
    data.push(codec.id());
    data.extend_from_slice(&(n as u64).to_le_bytes());
    data.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let mut buf = vec![0u8; codec.record_size(n)];
    for (_, d, sig, del) in records {
        codec.encode_record(d, sig, del, &mut buf);
        data.extend_from_slice(&buf);
    }
    std::fs::write(path, data).unwrap();
    let mut idx = Vec::new();
    idx.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (s, ..) in records {
        idx.extend_from_slice(&s.to_le_bytes());
    }
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(".idx");
    std::fs::write(PathBuf::from(sidecar), idx).unwrap();
}

fn record_strategy(n: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u64>, Vec<f64>)> {
    (
        proptest::collection::vec(prop_oneof![3 => 0u32..1000, 1 => Just(UNREACHABLE)], n..=n),
        proptest::collection::vec(any::<u64>(), n..=n),
        proptest::collection::vec(-1e12f64..1e12, n..=n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// v1 → open (still v1, readable) → first write migrates → reopen as
    /// v2: every record's live prefix survives bit-identically, and the
    /// migrated store has usable growth headroom.
    #[test]
    fn v1_records_roundtrip_migration_bit_identically(
        case in any::<u64>(),
        records in proptest::collection::vec(record_strategy(9), 1..6),
    ) {
        let n = 9;
        let path = tmp("prop", case);
        let recs: Vec<V1Record> = records
            .into_iter()
            .enumerate()
            .map(|(i, (d, s, del))| (i as u32 * 3, d, s, del))
            .collect();
        write_v1_file(&path, CodecKind::Wide, n, &recs);

        // pure reads do not migrate
        let mut st = DiskBdStore::open(&path).unwrap();
        prop_assert_eq!(st.version(), FormatVersion::V1);
        prop_assert_eq!(st.capacity(), n, "v1 has no headroom");
        for (s, d, ..) in &recs {
            let (a, b) = st.peek_pair(*s, 0, (n - 1) as u32).unwrap();
            prop_assert_eq!(a, d[0]);
            prop_assert_eq!(b, d[n - 1]);
        }
        prop_assert_eq!(st.version(), FormatVersion::V1, "peeks must not migrate");

        // first write-capable op migrates the whole file once
        st.update_with(recs[0].0, &mut |_| false).unwrap();
        prop_assert_eq!(st.version(), FormatVersion::V2);
        prop_assert!(st.headroom() > 0);
        drop(st);

        // reopen: clean v2 file, every record bit-identical
        let mut st = DiskBdStore::open(&path).unwrap();
        prop_assert_eq!(st.version(), FormatVersion::V2);
        prop_assert_eq!(st.last_recovery(), None);
        prop_assert_eq!(st.n(), n);
        prop_assert_eq!(st.sources(), recs.iter().map(|r| r.0).collect::<Vec<_>>());
        for (s, d, sig, del) in &recs {
            st.update_with(*s, &mut |view| {
                assert_eq!(view.d, &d[..]);
                assert_eq!(view.sigma, &sig[..]);
                assert_eq!(view.delta, &del[..]);
                false
            })
            .unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn migrated_store_grows_in_o1_and_accepts_updates() {
    let n = 4;
    let path = tmp("grow", 0);
    let d = vec![0, 1, 2, UNREACHABLE];
    let sig = vec![1, 1, 2, 0];
    let del = vec![0.5, 0.0, 1.25, 0.0];
    write_v1_file(&path, CodecKind::Wide, n, &[(5, d.clone(), sig, del)]);
    let mut st = DiskBdStore::open(&path).unwrap();
    // grow on a v1 store: migrates (one rewrite), then the growth itself is
    // a pure header update against the fresh headroom
    st.grow_vertex().unwrap();
    assert_eq!(st.version(), FormatVersion::V2);
    assert_eq!(st.n(), n + 1);
    let written = st.bytes_written;
    st.grow_vertex().unwrap();
    assert_eq!(st.bytes_written, written, "second growth is O(1)");
    st.update_with(5, &mut |view| {
        assert_eq!(&view.d[..n], &d[..]);
        assert_eq!(&view.d[n..], &[UNREACHABLE, UNREACHABLE]);
        view.delta[5] = 9.0;
        true
    })
    .unwrap();
}

#[test]
fn paper_codec_v1_files_migrate_too() {
    let n = 6;
    let path = tmp("paper", 0);
    let d = vec![0, 1, 2, 254, UNREACHABLE, 3];
    let sig = vec![1, 2, 65_534, 7, 0, 9];
    let del = vec![0.0, -1.5, 2.25, 1e-3, 0.0, 4.0];
    write_v1_file(
        &path,
        CodecKind::Paper,
        n,
        &[(0, d.clone(), sig.clone(), del.clone())],
    );
    let mut st = DiskBdStore::open(&path).unwrap();
    assert_eq!(st.codec(), CodecKind::Paper);
    st.update_with(0, &mut |view| {
        assert_eq!(view.d, &d[..]);
        assert_eq!(view.sigma, &sig[..]);
        assert_eq!(view.delta, &del[..]);
        false
    })
    .unwrap();
    assert_eq!(st.version(), FormatVersion::V2);
    drop(st);
    let mut st = DiskBdStore::open(&path).unwrap();
    st.update_with(0, &mut |view| {
        assert_eq!(view.d, &d[..]);
        false
    })
    .unwrap();
}

#[test]
fn v1_batch_update_migrates_then_coalesces() {
    let n = 5;
    let path = tmp("batch", 0);
    let recs: Vec<V1Record> = (0..4u32)
        .map(|s| {
            let mut d = vec![1u32; n];
            d[0] = 0;
            d[1] = 2;
            (s, d, vec![1; n], vec![0.0; n])
        })
        .collect();
    write_v1_file(&path, CodecKind::Wide, n, &recs);
    let mut st = DiskBdStore::open(&path).unwrap();
    let sources = st.sources();
    let stats = st
        .update_batch(&sources, 0, 1, &mut |s, view| {
            view.delta[0] = s as f64 + 1.0;
            true
        })
        .unwrap();
    assert_eq!(stats.processed, 4);
    assert_eq!(stats.written, 4);
    assert_eq!(st.version(), FormatVersion::V2);
    drop(st);
    let mut st = DiskBdStore::open(&path).unwrap();
    for s in 0..4u32 {
        st.update_with(s, &mut |view| {
            assert_eq!(view.delta[0], s as f64 + 1.0);
            false
        })
        .unwrap();
    }
}
