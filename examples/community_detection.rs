//! Girvan–Newman community detection on incrementally maintained edge
//! betweenness (the paper's §6.3 use case).
//!
//! Builds a planted two-community graph, peeks at the bridge edges through
//! a `Session`, then peels bridges by betweenness and prints the
//! dendrogram steps plus the best-modularity partition.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use std::time::Instant;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gn::{girvan_newman_incremental, girvan_newman_recompute};
use streaming_bc::graph::Graph;
use streaming_bc::{Backend, Session};

fn main() {
    // Two 40-vertex social cliques-of-cliques joined by 3 bridges.
    let a = holme_kim(40, 4, 0.6, 1);
    let b = holme_kim(40, 4, 0.6, 2);
    let mut g = Graph::with_vertices(80);
    for (u, v) in a.sorted_edges() {
        g.add_edge(u, v).unwrap();
    }
    for (u, v) in b.sorted_edges() {
        g.add_edge(u + 40, v + 40).unwrap();
    }
    for (u, v) in [(0u32, 40u32), (17, 63), (31, 52)] {
        g.add_edge(u, v).unwrap();
    }
    println!("planted graph: n={} m={} with 3 bridges", g.n(), g.m());

    // A session sees the bridges immediately: the most central edge is one
    // of the three planted cross-community links.
    let mut session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .expect("bootstrap");
    let reduced = session.scores().expect("scores");
    if let Some((edge, score)) = reduced.scores.top_edge(session.graph()) {
        let (u, v) = edge.endpoints();
        println!(
            "most central edge before peeling: {edge} (EBC {score:.0}) — \
             crosses the communities: {}",
            (u < 40) != (v < 40)
        );
    }

    let t0 = Instant::now();
    let dg = girvan_newman_incremental(&g, 12);
    let t_inc = t0.elapsed();

    println!("\nfirst peeled edges (bridges should lead):");
    for (i, step) in dg.steps.iter().take(6).enumerate() {
        println!(
            "  {i}: removed {} (EBC {:.0}) -> {} components, modularity {:.3}",
            step.edge, step.score, step.components, step.modularity
        );
    }
    println!(
        "\nbest modularity {:.3}; community of v0 has {} members",
        dg.best_modularity,
        dg.best_partition
            .iter()
            .filter(|&&c| c == dg.best_partition[0])
            .count()
    );

    let t0 = Instant::now();
    let _ = girvan_newman_recompute(&g, 12);
    let t_rec = t0.elapsed();
    println!(
        "\nincremental GN: {:.3}s   recompute GN: {:.3}s   speedup {:.1}x",
        t_inc.as_secs_f64(),
        t_rec.as_secs_f64(),
        t_rec.as_secs_f64() / t_inc.as_secs_f64().max(1e-9)
    );
}
