//! DO mode end to end on the hardened v2 disk store: create, bootstrap,
//! stream updates through the batched I/O path, grow the vertex set in
//! O(1), survive a simulated crash, and resume from the recovered records.
//!
//! ```sh
//! cargo run --release --example disk_mode
//! ```

use streaming_bc::core::{BetweennessState, Update, UpdateConfig};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::addition_stream;
use streaming_bc::store::{BdStore, CodecKind, DiskBdStore};

fn main() {
    let g = holme_kim(400, 4, 0.4, 7);
    let dir = std::env::temp_dir().join("streaming_bc_disk_mode");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bd.dat");

    // ── 1. create + bootstrap ────────────────────────────────────────────
    let store = DiskBdStore::create(&path, g.n(), CodecKind::Wide).expect("create store");
    println!(
        "created {} (format {:?}): n={}, slab capacity {} (headroom {} O(1) growths)",
        path.display(),
        store.version(),
        store.n(),
        store.capacity(),
        store.headroom(),
    );
    let mut state = BetweennessState::init_into_store(g.clone(), store, UpdateConfig::default())
        .expect("bootstrap");
    println!(
        "bootstrapped {} sources, {:.1} MiB on disk",
        g.n(),
        state.store().data_bytes() as f64 / (1024.0 * 1024.0)
    );

    // ── 2. stream updates (batched, run-sorted record I/O) ───────────────
    for &(u, v) in &addition_stream(&g, 8, 1) {
        state.apply(Update::add(u, v)).unwrap();
    }
    // a brand-new vertex arrives: with slab headroom this grows every
    // record for free (one 8-byte header write, zero record bytes)
    let fresh = g.n() as u32;
    state.apply(Update::add(3, fresh)).unwrap();
    println!(
        "vertex {fresh} arrived: every existing record grew for free \
         (headroom left: {})",
        state.store().headroom()
    );
    println!(
        "after 9 updates: {:.2} MiB read, {:.2} MiB written, {} sources skipped by dd==0",
        state.store().bytes_read as f64 / (1024.0 * 1024.0),
        state.store().bytes_written as f64 / (1024.0 * 1024.0),
        state.stats().sources_skipped,
    );
    state.store_mut().flush().expect("flush");

    // remember the top vertex to compare after recovery
    let top_before = top_vertex(&state);
    let graph_now = state.graph().clone();
    drop(state); // simulated shutdown

    // ── 3. crash recovery + resume ───────────────────────────────────────
    // reopen: open() validates header/sidecar/length and repairs any torn
    // mutation a crash left behind (none here — last_recovery() says so)
    let store = DiskBdStore::open(&path).expect("reopen after 'crash'");
    println!(
        "reopened cleanly: {} sources, recovery action: {:?}",
        store.num_sources(),
        store.last_recovery(),
    );
    // resume rebuilds the running scores from the BD records alone via the
    // deterministic exact reduction, then keeps streaming
    let mut state =
        BetweennessState::resume(graph_now, store, UpdateConfig::default()).expect("resume");
    let top_after = top_vertex(&state);
    assert_eq!(top_before.0, top_after.0, "ranking survives the restart");
    println!(
        "resumed: top vertex {} (VBC {:.3}) — identical to before the restart",
        top_after.0, top_after.1
    );

    state.apply(Update::remove(0, 1)).unwrap();
    println!(
        "...and updates keep flowing: VBC[{}] = {:.3} after one more removal",
        top_after.0,
        state.vertex_centrality()[top_after.0]
    );
}

fn top_vertex(state: &BetweennessState<DiskBdStore>) -> (usize, f64) {
    state
        .vertex_centrality()
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
}
