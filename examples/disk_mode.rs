//! Durable DO mode end to end through the `Session` facade: bootstrap a
//! disk-backed session directory, stream updates (checkpointed after every
//! apply), grow the vertex set, kill the process, and restart with
//! `Session::open` — no Brandes re-bootstrap, same scores.
//!
//! ```sh
//! cargo run --release --example disk_mode
//! ```

use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::addition_stream;
use streaming_bc::{Backend, Session, Update};

fn main() {
    let g = holme_kim(400, 4, 0.4, 7);
    let dir = std::env::temp_dir().join("streaming_bc_disk_mode");
    let _ = std::fs::remove_dir_all(&dir);

    // ── 1. bootstrap a durable single-machine session ────────────────────
    let mut session = Session::builder()
        .backend(Backend::Disk(dir.clone()))
        .build(&g)
        .expect("bootstrap");
    println!(
        "session directory {}: n={}, workers={}",
        dir.display(),
        session.graph().n(),
        session.workers()
    );

    // ── 2. stream updates (records update in place on disk) ──────────────
    let updates: Vec<Update> = addition_stream(&g, 8, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    session.apply_stream(&updates).unwrap();
    // a brand-new vertex arrives mid-stream
    let fresh = g.n() as u32;
    session.apply(Update::add(3, fresh)).unwrap();
    println!(
        "after {} updates (+1 vertex arrival): n={}",
        updates.len() + 1,
        session.graph().n()
    );
    let top_before = session.top_k(1).unwrap()[0];
    let exact_before = session.reduce_exact().unwrap().scores;
    drop(session); // simulated kill — EveryApply checkpointed for us

    // ── 3. re-bootstrap-free restart ─────────────────────────────────────
    let mut session = Session::open(&dir).expect("reopen after 'crash'");
    let exact_after = session.reduce_exact().unwrap().scores;
    let identical = exact_before
        .vbc
        .iter()
        .zip(&exact_after.vbc)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "reopened: top vertex v{} — exact scores bitwise identical to pre-kill: {identical}",
        session.top_k(1).unwrap()[0]
    );
    assert_eq!(session.top_k(1).unwrap()[0], top_before);

    // ...and updates keep flowing on the resumed session
    session.apply(Update::remove(0, 1)).unwrap();
    session.verify(1e-6).expect("resumed session verifies");
    println!(
        "...one more removal applied and verified against a fresh recomputation; \
         top vertex now v{}",
        session.top_k(1).unwrap()[0]
    );
    std::fs::remove_dir_all(&dir).ok();
}
