//! Tracking emerging "influencers" in an evolving social network — the
//! application the paper's conclusions motivate ("online detection and
//! prediction of emerging leaders ... in social networks").
//!
//! A social graph grows by preferential attachment with triadic closure;
//! after every batch of arrivals the session reports how the betweenness
//! ranking shifted — without ever recomputing from scratch.
//!
//! ```sh
//! cargo run --release --example evolving_social_network
//! ```

use streaming_bc::gen::models::holme_kim_with_order;
use streaming_bc::graph::Graph;
use streaming_bc::{Backend, Session, Update};

fn main() {
    let (full, order) = holme_kim_with_order(500, 4, 0.7, 21);
    let bootstrap_edges = order.len() - 200;

    let mut g = Graph::with_vertices(full.n());
    for &(u, v) in &order[..bootstrap_edges] {
        g.add_edge(u, v).unwrap();
    }
    // a 4-worker partitioned session: same API as the single machine
    let mut session = Session::builder()
        .backend(Backend::Memory)
        .workers(4)
        .build(&g)
        .expect("bootstrap");
    println!(
        "bootstrap: n={} m={} on {} workers; streaming {} more edges in 4 batches",
        g.n(),
        g.m(),
        session.workers(),
        order.len() - bootstrap_edges
    );
    let mut prev_top = session.top_k(5).unwrap();
    println!("initial top-5 brokers: {prev_top:?}");

    for (batch_idx, batch) in order[bootstrap_edges..].chunks(50).enumerate() {
        let updates: Vec<Update> = batch.iter().map(|&(u, v)| Update::add(u, v)).collect();
        session.apply_stream(&updates).unwrap();
        let top = session.top_k(5).unwrap();
        let entered: Vec<u32> = top
            .iter()
            .filter(|v| !prev_top.contains(v))
            .copied()
            .collect();
        let left: Vec<u32> = prev_top
            .iter()
            .filter(|v| !top.contains(v))
            .copied()
            .collect();
        println!("batch {batch_idx}: top-5 {top:?}  (+{entered:?} -{left:?})");
        prev_top = top;
    }
}
