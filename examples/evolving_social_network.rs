//! Tracking emerging "influencers" in an evolving social network — the
//! application the paper's conclusions motivate ("online detection and
//! prediction of emerging leaders ... in social networks").
//!
//! A social graph grows by preferential attachment with triadic closure;
//! after every batch of arrivals we report how the betweenness ranking
//! shifted — without ever recomputing from scratch.
//!
//! ```sh
//! cargo run --release --example evolving_social_network
//! ```

use streaming_bc::core::{BetweennessState, Update};
use streaming_bc::gen::models::holme_kim_with_order;
use streaming_bc::graph::Graph;

fn main() {
    let (full, order) = holme_kim_with_order(500, 4, 0.7, 21);
    let bootstrap_edges = order.len() - 200;

    let mut g = Graph::with_vertices(full.n());
    for &(u, v) in &order[..bootstrap_edges] {
        g.add_edge(u, v).unwrap();
    }
    let mut state = BetweennessState::init(&g);
    println!(
        "bootstrap: n={} m={}; streaming {} more edges in 4 batches",
        g.n(),
        g.m(),
        order.len() - bootstrap_edges
    );
    let mut prev_top = top_k(state.vertex_centrality(), 5);
    println!("initial top-5 brokers: {prev_top:?}");

    for (batch_idx, batch) in order[bootstrap_edges..].chunks(50).enumerate() {
        for &(u, v) in batch {
            state.apply(Update::add(u, v)).unwrap();
        }
        let top = top_k(state.vertex_centrality(), 5);
        let entered: Vec<u32> = top
            .iter()
            .filter(|v| !prev_top.contains(v))
            .copied()
            .collect();
        let left: Vec<u32> = prev_top
            .iter()
            .filter(|v| !top.contains(v))
            .copied()
            .collect();
        println!(
            "batch {batch_idx}: top-5 {top:?}  (+{entered:?} -{left:?}), \
             {} sources skipped via dd==0",
            state.stats().sources_skipped
        );
        prev_top = top;
        state.reset_stats();
    }
}

fn top_k(vbc: &[f64], k: usize) -> Vec<u32> {
    let mut ranked: Vec<(u32, f64)> = vbc
        .iter()
        .copied()
        .enumerate()
        .map(|(i, s)| (i as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    ranked.into_iter().take(k).map(|(v, _)| v).collect()
}
