//! Online monitoring of an evolving social network (the paper's §5.3
//! scenario): bootstrap on the historical graph, then keep centrality
//! current as timestamped edges arrive, checking whether updates finish
//! before the next arrival.
//!
//! The measured and modeled replays use the `ebc-engine` experiment
//! harness directly; the batch catch-up at the end runs through the
//! `Session` facade — one partitioned session and one single-machine
//! session answering the same backlog bitwise-identically.
//!
//! ```sh
//! cargo run --release --example online_monitoring
//! ```

use std::time::Duration;
use streaming_bc::core::BetweennessState;
use streaming_bc::engine::online::simulate_modeled;
use streaming_bc::engine::{simulate_online, ClusterEngine};
use streaming_bc::gen::models::holme_kim_with_order;
use streaming_bc::gen::streams::replay_growth;
use streaming_bc::{Backend, Session, Update};

fn main() {
    // Grow a 600-vertex social graph; the last 50 edges form the live
    // stream, arriving with bursty (log-normal) gaps of ~15ms on average.
    let (full, order) = holme_kim_with_order(600, 5, 0.6, 7);
    let (bootstrap, stream) = replay_growth(&order, full.n(), 50, 0.015, 1.2, 11);
    println!(
        "historical graph: n={} m={}; live stream: {} edges over {:.2}s",
        bootstrap.n(),
        bootstrap.m(),
        stream.len(),
        stream.events().last().unwrap().time
    );

    // Measured mode: a live 2-worker cluster (engine-layer experiment API).
    let mut cluster = ClusterEngine::new(&bootstrap, 2).expect("bootstrap cluster");
    let report = simulate_online(&mut cluster, &stream).expect("replay");
    println!(
        "\nmeasured, p=2 workers: {:.1}% missed, mean update {:.4}s, avg delay {:.4}s",
        report.pct_missed(),
        report.mean_update_time(),
        report.avg_delay
    );

    // Modeled mode: project larger clusters with the paper's t_U = t_S·n/p + t_M.
    println!("\nmodeled scaling (paper §5.3 projection):");
    println!("{:>8} {:>10} {:>12}", "mappers", "% missed", "mean upd (s)");
    for p in [1usize, 4, 16, 64] {
        let mut st = BetweennessState::new(&bootstrap);
        let r = simulate_modeled(&mut st, &stream, p, Duration::from_micros(50))
            .expect("modeled replay");
        println!(
            "{:>8} {:>9.1}% {:>12.5}",
            p,
            r.pct_missed(),
            r.mean_update_time()
        );
    }

    // Batch catch-up through the Session facade: a monitor that fell behind
    // replays the backlog on a 2-worker session, then cross-checks the
    // partition-invariant exact reduce against a single-machine session —
    // bit for bit, same API for both.
    let backlog: Vec<Update> = stream
        .events()
        .iter()
        .map(|e| Update {
            op: e.op,
            u: e.u,
            v: e.v,
        })
        .collect();
    let mut parallel = Session::builder()
        .backend(Backend::Memory)
        .workers(2)
        .build(&bootstrap)
        .expect("bootstrap session");
    let t0 = std::time::Instant::now();
    parallel.apply_stream(&backlog).expect("replay backlog");
    let batch_wall = t0.elapsed();
    let mut single = Session::builder()
        .backend(Backend::Memory)
        .build(&bootstrap)
        .expect("bootstrap session");
    single.apply_stream(&backlog).expect("replay backlog");
    let a = parallel.reduce_exact().expect("exact reduce").scores;
    let b = single.reduce_exact().expect("exact reduce").scores;
    let bitwise_equal = a
        .vbc
        .iter()
        .zip(&b.vbc)
        .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.ebc
            .iter()
            .zip(&b.ebc)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    println!(
        "\nbatch catch-up: {} edges pipelined in {:.4}s ({:.5}s/edge); \
         exact reduce bitwise equal across embodiments: {}",
        backlog.len(),
        batch_wall.as_secs_f64(),
        batch_wall.as_secs_f64() / backlog.len() as f64,
        bitwise_equal
    );

    println!("\nAn update is online when its time stays below the inter-arrival gap;");
    println!("adding workers divides per-update work until merges dominate.");
}
