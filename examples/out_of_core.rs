//! Out-of-core operation (the paper's DO configuration, §5.1) through the
//! `Session` facade: the per-source betweenness data lives on disk in the
//! paper's 11-byte-per-vertex columnar codec and records are updated in
//! place as edges stream in.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::store::CodecKind;
use streaming_bc::{Backend, Checkpoint, Session, Update};

fn main() {
    let g = holme_kim(800, 5, 0.5, 3);
    let dir = std::env::temp_dir().join("streaming_bc_out_of_core");
    let _ = std::fs::remove_dir_all(&dir);

    // The paper's codec: d:u8, σ:u16, δ:f64 = 11 bytes per vertex. Manual
    // checkpointing keeps the stream itself free of manifest rewrites.
    let mut session = Session::builder()
        .backend(Backend::Disk(dir.clone()))
        .codec(CodecKind::Paper)
        .checkpoint(Checkpoint::Manual)
        .build(&g)
        .expect("bootstrap");
    println!(
        "bootstrapped {} sources into {} ({} bytes/record, paper codec; \
         O(n²) total, §5.1)",
        g.n(),
        dir.display(),
        CodecKind::Paper.record_size(g.n()),
    );

    let mut updates: Vec<Update> = addition_stream(&g, 10, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    updates.extend(
        removal_stream(&g, 10, 2)
            .into_iter()
            .map(|(u, v)| Update::remove(u, v)),
    );
    session.apply_stream(&updates).unwrap();
    session.checkpoint().expect("checkpoint");
    println!(
        "applied {} updates in place, then checkpointed",
        updates.len()
    );

    let top = session.top_k(3).unwrap();
    let reduced = session.scores().unwrap();
    println!(
        "top-3 central vertices now: {:?}",
        top.iter()
            .map(|&v| (v, reduced.scores.vbc[v as usize]))
            .collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&dir).ok();
}
