//! Out-of-core operation (the paper's DO configuration, §5.1): keep the
//! per-source betweenness data on disk in the columnar binary format and
//! update records in place as edges stream in.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use streaming_bc::core::{BetweennessState, Update, UpdateConfig};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::store::{CodecKind, DiskBdStore};

fn main() {
    let g = holme_kim(800, 5, 0.5, 3);
    let dir = std::env::temp_dir().join("streaming_bc_example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bd.dat");

    // The paper's 11-byte-per-vertex codec: d:u8, σ:u16, δ:f64.
    let store = DiskBdStore::create(&path, g.n(), CodecKind::Paper).expect("create store");
    println!(
        "bootstrapping {} sources into {} ({} bytes/record, codec {:?})",
        g.n(),
        path.display(),
        CodecKind::Paper.record_size(g.n()),
        CodecKind::Paper,
    );
    let mut state = BetweennessState::init_into_store(g.clone(), store, UpdateConfig::default())
        .expect("bootstrap");
    println!(
        "on-disk BD size: {:.1} MiB for n={} (O(n²) total, §5.1)",
        state.store().data_bytes() as f64 / (1024.0 * 1024.0),
        g.n()
    );

    let adds = addition_stream(&g, 10, 1);
    let rems = removal_stream(&g, 10, 2);
    for &(u, v) in &adds {
        state.apply(Update::add(u, v)).unwrap();
    }
    for &(u, v) in &rems {
        state.apply(Update::remove(u, v)).unwrap();
    }

    let store = state.store();
    println!(
        "after 20 updates: {:.1} MiB read, {:.1} MiB written back in place",
        store.bytes_read as f64 / (1024.0 * 1024.0),
        store.bytes_written as f64 / (1024.0 * 1024.0),
    );
    println!(
        "dd==0 fast path skipped {} source visits entirely",
        state.stats().sources_skipped
    );

    let mut ranked: Vec<(usize, f64)> = state
        .vertex_centrality()
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top-3 central vertices now: {:?}", &ranked[..3]);
}
