//! Quickstart: keep vertex and edge betweenness current while a graph
//! evolves, through the unified `Session` facade.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streaming_bc::graph::Graph;
use streaming_bc::{Backend, Session, Update};

fn main() {
    // A small collaboration network: two tight groups and one bridge.
    //
    //   0 - 1        4 - 5
    //   | /    2--3    \ |
    //   1        |      6
    //            bridge
    let mut g = Graph::with_vertices(7);
    for (u, v) in [
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (4, 6),
        (5, 6),
    ] {
        g.add_edge(u, v).unwrap();
    }

    // Step 1 (Figure 1): one-off Brandes bootstrap behind the builder.
    let mut session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .expect("bootstrap");
    println!("after bootstrap:");
    report(&mut session);

    // Step 2: stream updates; centrality stays current incrementally.
    println!("\n+ add edge (1, 5): a shortcut between the groups");
    session.apply(Update::add(1, 5)).unwrap();
    report(&mut session);

    println!("\n- remove edge (2, 3): the old bridge loses its role");
    session.apply(Update::remove(2, 3)).unwrap();
    report(&mut session);

    println!("\n+ add edge (6, 7): a brand-new vertex joins");
    session.apply(Update::add(6, 7)).unwrap();
    report(&mut session);

    // The same API scales out: a 3-worker partitioned session answers the
    // identical stream with bitwise-identical exact scores.
    let mut cluster = Session::builder()
        .backend(Backend::Memory)
        .workers(3)
        .build(&g)
        .expect("bootstrap cluster");
    cluster
        .apply_stream(&[Update::add(1, 5), Update::remove(2, 3), Update::add(6, 7)])
        .unwrap();
    let a = session.reduce_exact().unwrap().scores;
    let b = cluster.reduce_exact().unwrap().scores;
    let identical = a
        .vbc
        .iter()
        .zip(&b.vbc)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    println!("\n3-worker session, same stream: exact scores bitwise identical = {identical}");
}

fn report(session: &mut Session) {
    let top = session.top_k(3).unwrap();
    let reduced = session.scores().unwrap();
    print!("  top vertices:");
    for v in top {
        print!("  v{v}={:.1}", reduced.scores.vbc[v as usize]);
    }
    if let Some((edge, score)) = reduced.scores.top_edge(session.graph()) {
        println!("   | top edge {edge} = {score:.1}");
    } else {
        println!();
    }
}
