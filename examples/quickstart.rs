//! Quickstart: keep vertex and edge betweenness current while a graph
//! evolves.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streaming_bc::core::{BetweennessState, Update};
use streaming_bc::graph::Graph;

fn main() {
    // A small collaboration network: two tight groups and one bridge.
    //
    //   0 - 1        4 - 5
    //   | /    2--3    \ |
    //   1        |      6
    //            bridge
    let mut g = Graph::with_vertices(7);
    for (u, v) in [
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (4, 6),
        (5, 6),
    ] {
        g.add_edge(u, v).unwrap();
    }

    // Step 1 (Figure 1): one-off Brandes bootstrap.
    let mut state = BetweennessState::init(&g);
    println!("after bootstrap:");
    report(&state);

    // Step 2: stream updates; centrality stays current incrementally.
    println!("\n+ add edge (1, 5): a shortcut between the groups");
    state.apply(Update::add(1, 5)).unwrap();
    report(&state);

    println!("\n- remove edge (2, 3): the old bridge loses its role");
    state.apply(Update::remove(2, 3)).unwrap();
    report(&state);

    println!("\n+ add edge (6, 7): a brand-new vertex joins");
    state.apply(Update::add(6, 7)).unwrap();
    report(&state);

    let stats = state.stats();
    println!(
        "\nkernel work: {} sources processed, {} skipped by the dd==0 test",
        stats.sources_processed, stats.sources_skipped
    );
}

fn report(state: &BetweennessState) {
    let vbc = state.vertex_centrality();
    let mut ranked: Vec<(usize, f64)> = vbc.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    print!("  top vertices:");
    for (v, score) in ranked.iter().take(3) {
        print!("  v{v}={score:.1}");
    }
    if let Some((edge, score)) = state.scores().top_edge(state.graph()) {
        println!("   | top edge {edge} = {score:.1}");
    } else {
        println!();
    }
}
