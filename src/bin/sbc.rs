//! `sbc` — streaming betweenness centrality command-line tool.
//!
//! ```text
//! sbc stats   <edgelist>                       graph statistics (Table 2 columns)
//! sbc exact   <edgelist> [--top k]             exact VBC/EBC via Brandes
//! sbc approx  <edgelist> --samples k [--top k] sampled approximation
//! sbc stream  <edgelist> <updates> [--top k]   bootstrap + incremental replay
//! sbc gn      <edgelist> [--removals k]        Girvan–Newman communities
//! sbc replay  --dir D [--at seq|all] [--top k] scores-as-of-seq from history
//! sbc serve   (--edgelist F | --open DIR) ...  network frontend (README "Serving")
//! sbc node    --id N [--tcp ADDR] [--wal F]    cluster shard node (DESIGN.md §12)
//! sbc coord   --edgelist F --leaders L ...     cluster coordinator, batch driver
//! sbc coord   ... --serve [--tcp ADDR]         coordinator behind the JSON frontend
//! sbc coord   ... --dir D                      durable control plane (restartable)
//! ```
//!
//! `sbc replay` reconstructs the exact scores a session reported at any
//! history seq by replaying its sealed history segments (README "Replay &
//! retention"); `sbc coord --dir` persists the coordinator's shard map and
//! journal so a killed coordinator resumes command of its running fleet.
//!
//! Edge lists are whitespace-separated `u v` lines (`#`/`%` comments).
//! Update files contain `+ u v` / `- u v` lines applied in order.
//!
//! `sbc serve` owns one `Session` and speaks the newline-delimited JSON
//! command protocol of DESIGN.md §11 over TCP (`--tcp ADDR`, default
//! `127.0.0.1:7878`, port 0 for ephemeral) and/or a unix socket
//! (`--unix PATH`). It drains gracefully on SIGTERM / ctrl-c / the
//! `shutdown` command: queued batches finish, the session checkpoints,
//! new connections are refused.

use std::process::ExitCode;
use streaming_bc::core::ranking::top_k;
use streaming_bc::core::{approx_betweenness, brandes, Update};
use streaming_bc::gn::girvan_newman_incremental;
use streaming_bc::graph::io::load_graph;
use streaming_bc::graph::stats::GraphStats;
use streaming_bc::graph::Graph;
use streaming_bc::serve::{serve_error, ServedCluster, ServedSession, Server, ServerConfig};
use streaming_bc::{Backend, Session, SessionError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sbc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  sbc stats  <edgelist>");
            eprintln!("  sbc exact  <edgelist> [--top k]");
            eprintln!("  sbc approx <edgelist> --samples k [--top k]");
            eprintln!("  sbc stream <edgelist> <updates-file> [--top k]");
            eprintln!("  sbc gn     <edgelist> [--removals k]");
            eprintln!("  sbc replay --dir DIR [--at seq|all] [--top k]");
            eprintln!("  sbc serve  (--edgelist F | --open DIR) [--tcp ADDR] [--unix PATH]");
            eprintln!("             [--workers p] [--dir DIR] [--queue n]");
            eprintln!("  sbc node   --id N [--tcp ADDR] [--wal FILE] [--wal-compact BYTES]");
            eprintln!("  sbc coord  --edgelist F --leaders id@addr,.. [--followers id@addr,..]");
            eprintln!(
                "             [--updates FILE] [--top k] [--serve [--tcp ADDR] [--unix PATH]]"
            );
            eprintln!("             [--dir DIR]   (resumes from DIR when a snapshot exists)");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "stats" => {
            let g = load(args.get(1))?;
            let s = GraphStats::compute(&g, 64);
            println!("n={} m={} avg_degree={:.2}", s.n, s.m, s.avg_degree);
            println!(
                "clustering={:.4} effective_diameter={:.2}",
                s.clustering_coefficient, s.effective_diameter
            );
            Ok(())
        }
        "exact" => {
            let g = load(args.get(1))?;
            let scores = brandes(&g);
            print_top(&g, &scores.vbc, &scores, flag(args, "--top").unwrap_or(10));
            Ok(())
        }
        "approx" => {
            let g = load(args.get(1))?;
            let k = flag(args, "--samples").ok_or("--samples k is required")?;
            let scores = approx_betweenness(&g, k, 42);
            println!("# approximated from {k} sampled sources (scaled n/k)");
            print_top(&g, &scores.vbc, &scores, flag(args, "--top").unwrap_or(10));
            Ok(())
        }
        "stream" => {
            let g = load(args.get(1))?;
            let updates = load_updates(args.get(2))?;
            let mut session = Session::builder()
                .backend(Backend::Memory)
                .build(&g)
                .map_err(|e| e.to_string())?;
            let t0 = std::time::Instant::now();
            let total = updates.len();
            session
                .apply_stream(&updates)
                .map_err(|e| format!("stream failed: {e}"))?;
            println!(
                "# applied {total} updates in {:.3}s",
                t0.elapsed().as_secs_f64(),
            );
            let scores = session.scores().map_err(|e| e.to_string())?.scores;
            print_top(
                session.graph(),
                &scores.vbc,
                &scores,
                flag(args, "--top").unwrap_or(10),
            );
            Ok(())
        }
        "gn" => {
            let g = load(args.get(1))?;
            let k = flag(args, "--removals").unwrap_or(g.m().min(200));
            let dg = girvan_newman_incremental(&g, k);
            println!(
                "# peeled {} edges; best modularity {:.4}",
                dg.steps.len(),
                dg.best_modularity
            );
            let labels = &dg.best_partition;
            let communities = labels.iter().copied().max().map_or(0, |x| x + 1);
            println!("# {communities} communities at the best cut");
            for (v, label) in labels.iter().enumerate() {
                println!("{v} {label}");
            }
            Ok(())
        }
        "replay" => replay(args),
        "serve" => serve(args),
        "node" => node(args),
        "coord" => coord(args),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// `sbc replay`: temporal analytics over a session directory's sealed
/// history — reconstruct the exact scores the session reported at seq
/// `--at` (or the newest seq with `--at all`, the default) and print them
/// with full `f64` round-trip precision, like `sbc coord` batch output.
/// A directory with a sealed-segment gap is refused with the typed
/// missing range.
fn replay(args: &[String]) -> Result<(), String> {
    let dir = str_flag(args, "--dir").ok_or("replay needs --dir DIR")?;
    let at = match str_flag(args, "--at") {
        None | Some("all") => None,
        Some(s) => Some(
            s.parse::<u64>()
                .map_err(|_| format!("bad --at {s:?} (want a seq or 'all')"))?,
        ),
    };
    let replayed = Session::replay_dir(dir, at).map_err(|e| format!("replay {dir}: {e}"))?;
    let scores = &replayed.reduced.scores;
    println!(
        "# replayed {dir} to seq={} in {:.3}s",
        replayed.seq,
        replayed.reduced.wall.as_secs_f64()
    );
    // `{}` on f64 is shortest-round-trip: these lines parse back bitwise
    for (v, x) in scores.vbc.iter().enumerate() {
        println!("v {v} {x}");
    }
    for (key, x) in scores.ebc_entries(&replayed.graph) {
        let (u, v) = key.endpoints();
        println!("e {u} {v} {x}");
    }
    if let Some(k) = flag(args, "--top") {
        print_top(&replayed.graph, &scores.vbc, scores, k);
    }
    Ok(())
}

/// `sbc serve`: build or reopen a session, then hand it to the frontend.
///
/// A session directory whose records are ahead of its manifest
/// (`SessionError::RecordsAhead`) still yields a *running* server: every
/// command is answered with the typed `records_ahead` protocol error, so
/// operators and clients see the census instead of a crash loop or a
/// silent hang.
fn serve(args: &[String]) -> Result<(), String> {
    let cfg = ServerConfig {
        tcp: match str_flag(args, "--tcp") {
            Some("none") => None,
            Some(addr) => Some(addr.to_string()),
            None => Some("127.0.0.1:7878".to_string()),
        },
        unix: str_flag(args, "--unix").map(Into::into),
        queue_depth: flag(args, "--queue").unwrap_or(64),
        // test-only crash injection for the restart-under-traffic suite
        crash_after: std::env::var("SBC_SERVE_CRASH_AFTER")
            .ok()
            .and_then(|v| v.parse().ok()),
    };
    if cfg.tcp.is_none() && cfg.unix.is_none() {
        return Err("serve needs at least one of --tcp, --unix".into());
    }

    let handle = if let Some(dir) = str_flag(args, "--open") {
        match Session::open(dir) {
            Ok(session) => Server::spawn(ServedSession::new(session), cfg),
            Err(e @ SessionError::RecordsAhead { .. }) => {
                eprintln!("sbc serve: cannot resume {dir}: {e}");
                eprintln!("sbc serve: serving in degraded mode (typed records_ahead errors)");
                Server::spawn_unavailable(serve_error(&e), cfg)
            }
            Err(e) => return Err(format!("open {dir}: {e}")),
        }
    } else {
        let g = load(str_flag(args, "--edgelist").map(String::from).as_ref())?;
        // an explicit --workers opts into the sharded engine even at p=1;
        // --dir alone is the single-machine disk backend
        let workers_flag = flag(args, "--workers");
        let workers = workers_flag.unwrap_or(1);
        let backend = match str_flag(args, "--dir") {
            Some(dir) if workers_flag.is_some() => Backend::Sharded(dir.into()),
            Some(dir) => Backend::Disk(dir.into()),
            None => Backend::Memory,
        };
        let session = Session::builder()
            .backend(backend)
            .workers(workers)
            .build(&g)
            .map_err(|e| format!("bootstrap failed: {e}"))?;
        Server::spawn(ServedSession::new(session), cfg)
    }
    .map_err(|e| format!("bind failed: {e}"))?;

    if let Some(addr) = handle.tcp_addr() {
        println!("listening tcp={addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("listening unix={}", path.display());
    }
    println!("ready");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if !ebc_serve::signal::install_shutdown_handler() {
        eprintln!("sbc serve: warning: could not install SIGTERM/SIGINT handler");
    }
    while !ebc_serve::signal::shutdown_requested() && !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.shutdown();
    handle.join();
    println!("drained");
    Ok(())
}

/// `sbc node`: one cluster shard node over TCP. Prints the same
/// `listening tcp=` / `ready` handshake as `sbc serve`, then speaks the
/// DESIGN.md §12 node protocol until a `shutdown` frame drains it.
fn node(args: &[String]) -> Result<(), String> {
    use streaming_bc::cluster::{transport, NodeConfig, NodeId, ShardNode, TcpTransport};
    let id = u32::try_from(flag(args, "--id").ok_or("node needs --id N")?)
        .map_err(|_| "node id out of range")?;
    if id == 0 {
        return Err("node id 0 is reserved for the coordinator".into());
    }
    let addr = str_flag(args, "--tcp").unwrap_or("127.0.0.1:0");
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;

    let (tx, mb) = transport::mailbox();
    let t = TcpTransport::new(NodeId(id), tx);
    t.listen(listener);

    println!("listening tcp={bound}");
    println!("ready");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let cfg = NodeConfig {
        wal_path: str_flag(args, "--wal").map(Into::into),
        // compact the op log behind the replication watermark once it
        // retains this many bytes (omit to keep it append-forever)
        wal_compact_bytes: flag(args, "--wal-compact").map(|b| b as u64),
        ..NodeConfig::default()
    };
    ShardNode::new(NodeId(id), t, mb, cfg).run();
    println!("drained");
    Ok(())
}

/// Parse `id@addr,id@addr,...` peer lists.
fn parse_peers(spec: &str) -> Result<Vec<(u32, String)>, String> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|part| {
            let (id, addr) = part
                .split_once('@')
                .ok_or(format!("bad peer {part:?} (want id@addr)"))?;
            let id: u32 = id.parse().map_err(|_| format!("bad node id {id:?}"))?;
            Ok((id, addr.to_string()))
        })
        .collect()
}

/// `sbc coord`: batch cluster driver. Bootstraps the listed shard nodes
/// over the edge list, streams an update file through the map/reduce
/// fan-out (failing over to followers if a leader dies), prints the exact
/// scores with full `f64` round-trip precision, and drains the cluster.
fn coord(args: &[String]) -> Result<(), String> {
    use streaming_bc::cluster::{
        transport, CoordJournal, Coordinator, CoordinatorConfig, NodeId, ShardSpec, TcpTransport,
        COORD,
    };
    let dir = str_flag(args, "--dir");
    let updates = match args.iter().position(|a| a == "--updates") {
        Some(i) => load_updates(args.get(i + 1))?,
        None => Vec::new(),
    };

    let (tx, mb) = transport::mailbox();
    let t = TcpTransport::new(COORD, tx);
    let mut coord = if let Some(dir) = dir.filter(|d| CoordJournal::exists(d)) {
        // a previous incarnation left durable control state: resume
        // command of the running fleet instead of re-bootstrapping
        eprintln!("sbc coord: resuming from {dir}");
        Coordinator::resume(t, mb, CoordinatorConfig::default(), dir)
            .map_err(|e| format!("resume {dir}: {e}"))?
    } else {
        let g = load(str_flag(args, "--edgelist").map(String::from).as_ref())?;
        let leaders = parse_peers(str_flag(args, "--leaders").ok_or("coord needs --leaders")?)?;
        let followers = match str_flag(args, "--followers") {
            Some(spec) => parse_peers(spec)?,
            None => Vec::new(),
        };
        if leaders.is_empty() {
            return Err("coord needs at least one leader".into());
        }
        if !followers.is_empty() && followers.len() != leaders.len() {
            return Err("--followers must list one follower per leader".into());
        }
        let specs: Vec<ShardSpec> = leaders
            .iter()
            .enumerate()
            .map(|(k, (id, addr))| ShardSpec {
                leader: NodeId(*id),
                leader_hint: Some(addr.clone()),
                follower: followers.get(k).map(|(id, _)| NodeId(*id)),
                follower_hint: followers.get(k).map(|(_, addr)| addr.clone()),
            })
            .collect();
        let mut coord = Coordinator::new(t, mb, CoordinatorConfig::default());
        if let Some(dir) = dir {
            coord
                .persist_to(dir)
                .map_err(|e| format!("persist to {dir}: {e}"))?;
        }
        coord
            .bootstrap(&g, specs)
            .map_err(|e| format!("bootstrap failed: {e}"))?;
        coord
    };
    let total = updates.len();
    for u in updates {
        coord.apply(u).map_err(|e| format!("apply failed: {e}"))?;
    }
    if args.iter().any(|a| a == "--serve") {
        return coord_serve(args, coord, total);
    }
    let scores = coord
        .reduce_exact()
        .map_err(|e| format!("reduce failed: {e}"))?;
    println!(
        "# applied {total} updates across {} shards (failovers={})",
        coord.num_shards(),
        coord.failovers()
    );
    // `{}` on f64 is shortest-round-trip: these lines parse back bitwise
    for (v, x) in scores.vbc.iter().enumerate() {
        println!("v {v} {x}");
    }
    for (key, x) in scores.ebc_entries(coord.graph()) {
        let (u, v) = key.endpoints();
        println!("e {u} {v} {x}");
    }
    if let Some(k) = flag(args, "--top") {
        print_top(coord.graph(), &scores.vbc, &scores, k);
    }
    coord.shutdown();
    Ok(())
}

/// `sbc coord --serve`: the bootstrapped cluster behind the same JSON-line
/// frontend `sbc serve` offers. Clients apply updates and reduce through
/// the DESIGN.md §11 protocol without knowing a fleet of `sbc node`
/// processes answers; on drain the coordinator is reclaimed and the whole
/// fleet is shut down before `drained` is printed.
fn coord_serve(
    args: &[String],
    coord: streaming_bc::cluster::Coordinator<streaming_bc::cluster::TcpTransport>,
    preloaded: usize,
) -> Result<(), String> {
    let cfg = ServerConfig {
        tcp: match str_flag(args, "--tcp") {
            Some("none") => None,
            Some(addr) => Some(addr.to_string()),
            None => Some("127.0.0.1:7878".to_string()),
        },
        unix: str_flag(args, "--unix").map(Into::into),
        queue_depth: flag(args, "--queue").unwrap_or(64),
        crash_after: None,
    };
    if cfg.tcp.is_none() && cfg.unix.is_none() {
        return Err("coord --serve needs at least one of --tcp, --unix".into());
    }
    if preloaded > 0 {
        eprintln!("sbc coord: preloaded {preloaded} updates before serving");
    }

    let served = ServedCluster::new(coord);
    let keeper = served.clone();
    let handle = Server::spawn(served, cfg).map_err(|e| format!("bind failed: {e}"))?;

    if let Some(addr) = handle.tcp_addr() {
        println!("listening tcp={addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("listening unix={}", path.display());
    }
    println!("ready");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if !ebc_serve::signal::install_shutdown_handler() {
        eprintln!("sbc coord: warning: could not install SIGTERM/SIGINT handler");
    }
    while !ebc_serve::signal::shutdown_requested() && !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.shutdown();
    handle.join();
    // the frontend is drained; reclaim the coordinator and drain the fleet
    if let Some(coord) = keeper.take() {
        coord.shutdown();
    }
    println!("drained");
    Ok(())
}

fn load(path: Option<&String>) -> Result<Graph, String> {
    let path = path.ok_or("missing edge-list path")?;
    load_graph(path).map_err(|e| format!("{path}: {e}"))
}

fn load_updates(path: Option<&String>) -> Result<Vec<Update>, String> {
    let path = path.ok_or("missing updates path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (op, u, v) = (it.next(), it.next(), it.next());
        let parse = |t: Option<&str>| -> Result<u32, String> {
            t.and_then(|x| x.parse().ok())
                .ok_or(format!("{path}:{}: malformed update line {line:?}", no + 1))
        };
        match op {
            Some("+") => out.push(Update::add(parse(u)?, parse(v)?)),
            Some("-") => out.push(Update::remove(parse(u)?, parse(v)?)),
            _ => return Err(format!("{path}:{}: expected '+ u v' or '- u v'", no + 1)),
        }
    }
    Ok(out)
}

fn print_top(g: &Graph, vbc: &[f64], scores: &streaming_bc::core::Scores, k: usize) {
    println!("# top-{k} vertices by betweenness (ordered-pair convention)");
    for v in top_k(vbc, k) {
        println!("v {v} {:.4}", vbc[v as usize]);
    }
    let mut edges = scores.ebc_entries(g);
    // total_cmp never panics on NaN (unlike partial_cmp), and the endpoint
    // tie-break makes equal-score output order deterministic
    edges.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| a.0.endpoints().cmp(&b.0.endpoints()))
    });
    println!("# top-{k} edges");
    for (key, score) in edges.into_iter().take(k) {
        let (u, v) = key.endpoints();
        println!("e {u} {v} {score:.4}");
    }
}
