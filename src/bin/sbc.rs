//! `sbc` — streaming betweenness centrality command-line tool.
//!
//! ```text
//! sbc stats   <edgelist>                       graph statistics (Table 2 columns)
//! sbc exact   <edgelist> [--top k]             exact VBC/EBC via Brandes
//! sbc approx  <edgelist> --samples k [--top k] sampled approximation
//! sbc stream  <edgelist> <updates> [--top k]   bootstrap + incremental replay
//! sbc gn      <edgelist> [--removals k]        Girvan–Newman communities
//! ```
//!
//! Edge lists are whitespace-separated `u v` lines (`#`/`%` comments).
//! Update files contain `+ u v` / `- u v` lines applied in order.

use std::process::ExitCode;
use streaming_bc::core::ranking::top_k;
use streaming_bc::core::{approx_betweenness, brandes, Update};
use streaming_bc::gn::girvan_newman_incremental;
use streaming_bc::graph::io::load_graph;
use streaming_bc::graph::stats::GraphStats;
use streaming_bc::graph::Graph;
use streaming_bc::{Backend, Session};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sbc: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  sbc stats  <edgelist>");
            eprintln!("  sbc exact  <edgelist> [--top k]");
            eprintln!("  sbc approx <edgelist> --samples k [--top k]");
            eprintln!("  sbc stream <edgelist> <updates-file> [--top k]");
            eprintln!("  sbc gn     <edgelist> [--removals k]");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "stats" => {
            let g = load(args.get(1))?;
            let s = GraphStats::compute(&g, 64);
            println!("n={} m={} avg_degree={:.2}", s.n, s.m, s.avg_degree);
            println!(
                "clustering={:.4} effective_diameter={:.2}",
                s.clustering_coefficient, s.effective_diameter
            );
            Ok(())
        }
        "exact" => {
            let g = load(args.get(1))?;
            let scores = brandes(&g);
            print_top(&g, &scores.vbc, &scores, flag(args, "--top").unwrap_or(10));
            Ok(())
        }
        "approx" => {
            let g = load(args.get(1))?;
            let k = flag(args, "--samples").ok_or("--samples k is required")?;
            let scores = approx_betweenness(&g, k, 42);
            println!("# approximated from {k} sampled sources (scaled n/k)");
            print_top(&g, &scores.vbc, &scores, flag(args, "--top").unwrap_or(10));
            Ok(())
        }
        "stream" => {
            let g = load(args.get(1))?;
            let updates = load_updates(args.get(2))?;
            let mut session = Session::builder()
                .backend(Backend::Memory)
                .build(&g)
                .map_err(|e| e.to_string())?;
            let t0 = std::time::Instant::now();
            let total = updates.len();
            session
                .apply_stream(&updates)
                .map_err(|e| format!("stream failed: {e}"))?;
            println!(
                "# applied {total} updates in {:.3}s",
                t0.elapsed().as_secs_f64(),
            );
            let scores = session.scores().map_err(|e| e.to_string())?.scores;
            print_top(
                session.graph(),
                &scores.vbc,
                &scores,
                flag(args, "--top").unwrap_or(10),
            );
            Ok(())
        }
        "gn" => {
            let g = load(args.get(1))?;
            let k = flag(args, "--removals").unwrap_or(g.m().min(200));
            let dg = girvan_newman_incremental(&g, k);
            println!(
                "# peeled {} edges; best modularity {:.4}",
                dg.steps.len(),
                dg.best_modularity
            );
            let labels = &dg.best_partition;
            let communities = labels.iter().copied().max().map_or(0, |x| x + 1);
            println!("# {communities} communities at the best cut");
            for (v, label) in labels.iter().enumerate() {
                println!("{v} {label}");
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load(path: Option<&String>) -> Result<Graph, String> {
    let path = path.ok_or("missing edge-list path")?;
    load_graph(path).map_err(|e| format!("{path}: {e}"))
}

fn load_updates(path: Option<&String>) -> Result<Vec<Update>, String> {
    let path = path.ok_or("missing updates path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (op, u, v) = (it.next(), it.next(), it.next());
        let parse = |t: Option<&str>| -> Result<u32, String> {
            t.and_then(|x| x.parse().ok())
                .ok_or(format!("{path}:{}: malformed update line {line:?}", no + 1))
        };
        match op {
            Some("+") => out.push(Update::add(parse(u)?, parse(v)?)),
            Some("-") => out.push(Update::remove(parse(u)?, parse(v)?)),
            _ => return Err(format!("{path}:{}: expected '+ u v' or '- u v'", no + 1)),
        }
    }
    Ok(out)
}

fn print_top(g: &Graph, vbc: &[f64], scores: &streaming_bc::core::Scores, k: usize) {
    println!("# top-{k} vertices by betweenness (ordered-pair convention)");
    for v in top_k(vbc, k) {
        println!("v {v} {:.4}", vbc[v as usize]);
    }
    let mut edges = scores.ebc_entries(g);
    edges.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("# top-{k} edges");
    for (key, score) in edges.into_iter().take(k) {
        let (u, v) = key.endpoints();
        println!("e {u} {v} {score:.4}");
    }
}
