//! # streaming-bc
//!
//! Reference Rust implementation of **"Scalable Online Betweenness Centrality
//! in Evolving Graphs"** (Kourtellis, De Francisci Morales, Bonchi —
//! ICDE 2016, arXiv:1401.6981).
//!
//! The one entry point is the [`Session`] facade: a [`SessionBuilder`]
//! selects the embodiment — `BD[·]` records in memory or on disk, sources
//! on a single machine or partitioned over `p` workers — and yields one
//! object with one API (`apply`, `apply_stream`, `scores`, `reduce_exact`,
//! `top_k`, `verify`), whatever the backend. Durable sessions restart from
//! their directory via [`Session::open`] **without re-running the Brandes
//! bootstrap**.
//!
//! ## Quickstart
//!
//! ```
//! use streaming_bc::{Backend, Session, Update};
//! use streaming_bc::graph::Graph;
//!
//! // a square with one diagonal
//! let mut g = Graph::with_vertices(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
//!     g.add_edge(u, v).unwrap();
//! }
//!
//! // one-off Brandes bootstrap (step 1 of the framework) ...
//! let mut session = Session::builder()
//!     .backend(Backend::Memory)
//!     .build(&g)?;
//!
//! // ... then stream updates (step 2): centrality stays current.
//! session.apply(Update::add(1, 3))?;
//! session.apply(Update::remove(0, 2))?;
//!
//! let vbc = session.scores()?.scores.vbc;
//! assert_eq!(vbc.len(), 4);
//! assert!(session.edge_centrality(1, 3)?.unwrap() > 0.0);
//!
//! // the same stream on a 3-worker partitioned session: same API,
//! // bitwise-identical exact scores
//! let mut cluster = Session::builder()
//!     .backend(Backend::Memory)
//!     .workers(3)
//!     .build(&g)?;
//! cluster.apply_stream(&[Update::add(1, 3), Update::remove(0, 2)])?;
//! assert_eq!(session.top_k(2)?, cluster.top_k(2)?);
//! # Ok::<(), streaming_bc::SessionError>(())
//! ```
//!
//! ## Layer crates
//!
//! The facade re-exports the workspace's layer crates for direct access:
//!
//! * [`graph`] — dynamic undirected graph substrate, statistics, streams,
//!   structural snapshots;
//! * [`gen`] — synthetic graph & update-stream generators;
//! * [`core`] — static Brandes baselines, the incremental VBC/EBC
//!   framework (the paper's contribution), and the [`core::api::EbcEngine`]
//!   trait the session drives;
//! * [`store`] — out-of-core columnar `BD[·]` storage and per-shard files;
//! * [`engine`] — the shared-nothing parallel / online execution engine;
//! * [`gn`] — Girvan–Newman community detection on incremental EBC;
//! * [`serve`] — the network frontend bridge: [`serve::ServedSession`]
//!   plugs a [`Session`] into the `ebc-serve` TCP/unix JSON-line server
//!   (`sbc serve` on the command line, README "Serving" for the wire
//!   protocol quickstart);
//! * [`cluster`] — multi-host shard replication: the node wire protocol,
//!   the coordinator with its versioned shard map, and leader failover
//!   (`sbc node` / `sbc coord` on the command line, DESIGN.md §12).

#![deny(missing_docs)]

pub use ebc_cluster as cluster;
pub use ebc_core as core;
pub use ebc_engine as engine;
pub use ebc_gen as gen;
pub use ebc_gn as gn;
pub use ebc_graph as graph;
pub use ebc_store as store;

pub mod serve;
mod session;

pub use ebc_core::api::{EbcEngine, EbcError, RebalanceOutcome, Reduced, ShardAssignment};
pub use ebc_core::ranking;
pub use ebc_core::state::Update;
pub use ebc_store::HistoryStats;
pub use session::{
    Backend, Checkpoint, CompactionConfig, Replayed, Session, SessionBuilder, SessionError,
};
