//! # streaming-bc
//!
//! Reference Rust implementation of **"Scalable Online Betweenness Centrality
//! in Evolving Graphs"** (Kourtellis, De Francisci Morales, Bonchi —
//! ICDE 2016, arXiv:1401.6981).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — dynamic undirected graph substrate, statistics, streams;
//! * [`gen`] — synthetic graph & update-stream generators;
//! * [`core`] — static Brandes baselines and the incremental VBC/EBC
//!   framework (the paper's contribution);
//! * [`store`] — out-of-core columnar `BD[·]` storage;
//! * [`engine`] — the shared-nothing parallel / online execution engine;
//! * [`gn`] — Girvan–Newman community detection on incremental EBC.
//!
//! ## Quickstart
//!
//! ```
//! use streaming_bc::core::{BetweennessState, Update};
//! use streaming_bc::graph::Graph;
//!
//! // a square with one diagonal
//! let mut g = Graph::with_vertices(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
//!     g.add_edge(u, v).unwrap();
//! }
//!
//! // one-off Brandes bootstrap (step 1 of the framework) ...
//! let mut state = BetweennessState::init(&g);
//!
//! // ... then stream updates (step 2): centrality stays current.
//! state.apply(Update::add(1, 3)).unwrap();
//! state.apply(Update::remove(0, 2)).unwrap();
//!
//! let vbc = state.vertex_centrality();
//! assert_eq!(vbc.len(), 4);
//! assert!(state.edge_centrality(1, 3).unwrap() > 0.0);
//! ```

pub use ebc_core as core;
pub use ebc_engine as engine;
pub use ebc_gen as gen;
pub use ebc_gn as gn;
pub use ebc_graph as graph;
pub use ebc_store as store;
