//! Binding [`Session`] to the network frontend.
//!
//! `ebc-serve` owns transport, framing and the command protocol but knows
//! nothing about the facade (the dependency points the other way: this
//! crate's `sbc` binary links the server). The bridge is
//! [`ServedSession`], a newtype implementing [`ebc_serve::ServeEngine`]
//! over a [`Session`], plus the error mapping that carries
//! [`SessionError::RecordsAhead`] onto the wire as the typed
//! `records_ahead` protocol error instead of flattening it into prose.
//!
//! ```no_run
//! use streaming_bc::{Backend, Session};
//! use streaming_bc::serve::ServedSession;
//! use streaming_bc::graph::Graph;
//! use ebc_serve::{Server, ServerConfig};
//!
//! let mut g = Graph::with_vertices(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
//!     g.add_edge(u, v).unwrap();
//! }
//! let session = Session::builder().backend(Backend::Memory).build(&g)?;
//! let handle = Server::spawn(ServedSession::new(session), ServerConfig::default())?;
//! println!("serving on {}", handle.tcp_addr().unwrap());
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::session::{Session, SessionError};
use ebc_core::api::EbcError;
use ebc_core::state::Update;
use ebc_serve::{EngineInfo, MoveReport, ServeEngine, ServeError};
use std::time::Duration;

pub use ebc_serve::{Server, ServerConfig, ServerHandle};

/// A [`Session`] wearing the [`ServeEngine`] trait so `ebc-serve` can
/// drive it from the writer task.
pub struct ServedSession {
    session: Session,
}

impl ServedSession {
    /// Wrap a bootstrapped or reopened session for serving.
    pub fn new(session: Session) -> Self {
        ServedSession { session }
    }

    /// The wrapped session back (e.g. after a drain, for inspection).
    pub fn into_inner(self) -> Session {
        self.session
    }

    fn backend_label(&self) -> &'static str {
        match (self.session.dir().is_some(), self.session.workers()) {
            (false, _) => "memory",
            (true, 1) => "disk",
            (true, _) => "sharded",
        }
    }
}

/// Map a facade error onto the wire taxonomy. Graph-validation failures
/// keep the engine usable and map to `invalid`; the records-ahead census
/// keeps its fields; everything else is an `engine` error.
pub fn serve_error(e: &SessionError) -> ServeError {
    match e {
        SessionError::RecordsAhead {
            manifest_map_version,
            store_version,
            manifest_sources,
            record_sources,
        } => ServeError::RecordsAhead {
            manifest_map_version: *manifest_map_version,
            store_version: *store_version,
            manifest_sources: *manifest_sources,
            record_sources: *record_sources,
        },
        SessionError::Engine(EbcError::Graph(g)) => ServeError::Invalid(g.to_string()),
        SessionError::Engine(EbcError::SparseVertex(v)) => {
            ServeError::Invalid(format!("vertex {v} skips ids"))
        }
        SessionError::Engine(EbcError::Engine(msg)) if msg.contains("requires a sharded") => {
            ServeError::Unsupported(msg.clone())
        }
        other => ServeError::Engine(other.to_string()),
    }
}

impl ServeEngine for ServedSession {
    fn apply_batch(&mut self, updates: &[Update]) -> Result<(), ServeError> {
        self.session
            .apply_stream(updates)
            .map_err(|e| serve_error(&e))
    }

    fn scores_vbc(&mut self) -> Result<Vec<f64>, ServeError> {
        Ok(self
            .session
            .scores()
            .map_err(|e| serve_error(&e))?
            .scores
            .vbc)
    }

    fn reduce_exact(&mut self) -> Result<(Vec<f64>, Vec<f64>, Duration), ServeError> {
        let reduced = self.session.reduce_exact().map_err(|e| serve_error(&e))?;
        Ok((reduced.scores.vbc, reduced.scores.ebc, reduced.wall))
    }

    fn checkpoint(&mut self) -> Result<(), ServeError> {
        self.session.checkpoint().map_err(|e| serve_error(&e))
    }

    fn handoff(&mut self, source: u32, to: usize) -> Result<MoveReport, ServeError> {
        let outcome = self
            .session
            .handoff(source, to)
            .map_err(|e| serve_error(&e))?;
        Ok(MoveReport {
            moves: outcome.moves,
            map_version: outcome.map_version,
        })
    }

    fn rebalance(&mut self, threshold: usize) -> Result<MoveReport, ServeError> {
        let outcome = self
            .session
            .rebalance(threshold)
            .map_err(|e| serve_error(&e))?;
        Ok(MoveReport {
            moves: outcome.moves,
            map_version: outcome.map_version,
        })
    }

    fn info(&self) -> EngineInfo {
        EngineInfo {
            n: self.session.graph().n(),
            m: self.session.graph().m(),
            workers: self.session.workers(),
            backend: self.backend_label().to_string(),
            map_version: self.session.shard_map().map(|m| m.version),
        }
    }
}
