//! Binding [`Session`] to the network frontend.
//!
//! `ebc-serve` owns transport, framing and the command protocol but knows
//! nothing about the facade (the dependency points the other way: this
//! crate's `sbc` binary links the server). The bridge is
//! [`ServedSession`], a newtype implementing [`ebc_serve::ServeEngine`]
//! over a [`Session`], plus the error mapping that carries
//! [`SessionError::RecordsAhead`] onto the wire as the typed
//! `records_ahead` protocol error instead of flattening it into prose.
//!
//! ```no_run
//! use streaming_bc::{Backend, Session};
//! use streaming_bc::serve::ServedSession;
//! use streaming_bc::graph::Graph;
//! use ebc_serve::{Server, ServerConfig};
//!
//! let mut g = Graph::with_vertices(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
//!     g.add_edge(u, v).unwrap();
//! }
//! let session = Session::builder().backend(Backend::Memory).build(&g)?;
//! let handle = Server::spawn(ServedSession::new(session), ServerConfig::default())?;
//! println!("serving on {}", handle.tcp_addr().unwrap());
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::session::{Session, SessionError};
use ebc_cluster::coord::ClusterError;
use ebc_cluster::{Coordinator, Transport};
use ebc_core::api::EbcError;
use ebc_core::rankindex::ScoreDelta;
use ebc_core::state::Update;
use ebc_engine::shardmap::SourceMove;
use ebc_serve::{EngineInfo, MoveReport, ServeEngine, ServeError};
use std::time::Duration;

pub use ebc_serve::{Server, ServerConfig, ServerHandle};

/// A [`Session`] wearing the [`ServeEngine`] trait so `ebc-serve` can
/// drive it from the writer task.
pub struct ServedSession {
    session: Session,
}

impl ServedSession {
    /// Wrap a bootstrapped or reopened session for serving.
    pub fn new(session: Session) -> Self {
        ServedSession { session }
    }

    /// The wrapped session back (e.g. after a drain, for inspection).
    pub fn into_inner(self) -> Session {
        self.session
    }

    fn backend_label(&self) -> &'static str {
        match (self.session.dir().is_some(), self.session.workers()) {
            (false, _) => "memory",
            (true, 1) => "disk",
            (true, _) => "sharded",
        }
    }
}

/// Map a facade error onto the wire taxonomy. Graph-validation failures
/// keep the engine usable and map to `invalid`; the records-ahead census
/// keeps its fields; everything else is an `engine` error.
pub fn serve_error(e: &SessionError) -> ServeError {
    match e {
        SessionError::RecordsAhead {
            manifest_map_version,
            store_version,
            manifest_sources,
            record_sources,
        } => ServeError::RecordsAhead {
            manifest_map_version: *manifest_map_version,
            store_version: *store_version,
            manifest_sources: *manifest_sources,
            record_sources: *record_sources,
        },
        SessionError::Engine(EbcError::Graph(g)) => ServeError::Invalid(g.to_string()),
        SessionError::Engine(EbcError::SparseVertex(v)) => {
            ServeError::Invalid(format!("vertex {v} skips ids"))
        }
        SessionError::Engine(EbcError::Engine(msg)) if msg.contains("requires a sharded") => {
            ServeError::Unsupported(msg.clone())
        }
        SessionError::HistoryGap {
            missing_first,
            missing_last,
        } => ServeError::HistoryGap {
            missing_first: *missing_first,
            missing_last: *missing_last,
        },
        other => ServeError::Engine(other.to_string()),
    }
}

/// A cluster [`Coordinator`] wearing the [`ServeEngine`] trait: `sbc
/// coord --serve` plugs a whole replicated shard cluster into the same
/// TCP/unix JSON-line frontend a single [`Session`] gets — clients cannot
/// tell a fleet of `sbc node` processes from one in-process engine, and
/// `reduce_exact` stays bitwise equal to both.
///
/// Clones share the coordinator (the server's writer task is the only
/// caller, so the mutex is uncontended); keep one clone outside
/// [`Server::spawn`] and [`ServedCluster::take`] the coordinator back
/// after the drain to shut the node fleet down.
pub struct ServedCluster<T: Transport> {
    coord: std::sync::Arc<std::sync::Mutex<Option<Coordinator<T>>>>,
    /// Scores as of the last `take_score_delta` drain, for bit-diffing the
    /// next reduce into a sparse delta (shared across clones so the writer
    /// task and the retained outer clone see one publication history).
    published_vbc: std::sync::Arc<std::sync::Mutex<Option<Vec<f64>>>>,
}

impl<T: Transport> Clone for ServedCluster<T> {
    fn clone(&self) -> Self {
        ServedCluster {
            coord: self.coord.clone(),
            published_vbc: self.published_vbc.clone(),
        }
    }
}

impl<T: Transport> ServedCluster<T> {
    /// Wrap a bootstrapped coordinator for serving.
    pub fn new(coord: Coordinator<T>) -> Self {
        ServedCluster {
            coord: std::sync::Arc::new(std::sync::Mutex::new(Some(coord))),
            published_vbc: std::sync::Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// Reclaim the coordinator (e.g. to drain the node fleet after the
    /// frontend drained). Subsequent engine calls answer `shutting_down`.
    pub fn take(&self) -> Option<Coordinator<T>> {
        self.coord.lock().unwrap().take()
    }

    fn with<R>(
        &self,
        f: impl FnOnce(&mut Coordinator<T>) -> Result<R, ServeError>,
    ) -> Result<R, ServeError> {
        let mut guard = self.coord.lock().unwrap();
        let coord = guard.as_mut().ok_or(ServeError::ShuttingDown)?;
        f(coord)
    }
}

/// Map a cluster error onto the wire taxonomy: replica validation
/// failures leave the cluster usable (`invalid`); anything else — a lost
/// shard, a fenced or garbled node — is an `engine` error.
fn cluster_error(e: &ClusterError) -> ServeError {
    match e {
        ClusterError::Invalid(m) => ServeError::Invalid(m.clone()),
        other => ServeError::Engine(other.to_string()),
    }
}

impl<T: Transport> ServeEngine for ServedCluster<T> {
    fn apply_batch(&mut self, updates: &[Update]) -> Result<(), ServeError> {
        self.with(|coord| {
            for &u in updates {
                coord.apply(u).map_err(|e| cluster_error(&e))?;
            }
            Ok(())
        })
    }

    fn scores_vbc(&mut self) -> Result<Vec<f64>, ServeError> {
        self.with(|coord| Ok(coord.reduce().map_err(|e| cluster_error(&e))?.vbc))
    }

    fn take_score_delta(&mut self) -> Result<ScoreDelta, ServeError> {
        let vbc = self.scores_vbc()?;
        let mut published = self.published_vbc.lock().unwrap();
        Ok(ScoreDelta::from_diff(&mut published, vbc))
    }

    fn reduce_exact(&mut self) -> Result<(Vec<f64>, Vec<f64>, Duration), ServeError> {
        self.with(|coord| {
            let t0 = std::time::Instant::now();
            let s = coord.reduce_exact().map_err(|e| cluster_error(&e))?;
            Ok((s.vbc, s.ebc, t0.elapsed()))
        })
    }

    fn checkpoint(&mut self) -> Result<(), ServeError> {
        // every node already has the full history in its WAL; there is no
        // additional at-rest state for the coordinator to flush
        self.with(|_| Ok(()))
    }

    fn handoff(&mut self, source: u32, to: usize) -> Result<MoveReport, ServeError> {
        self.with(|coord| {
            let from = coord
                .map()
                .owner_of(source)
                .ok_or_else(|| ServeError::Invalid(format!("source {source} is not mapped")))?;
            if to >= coord.num_shards() {
                return Err(ServeError::Invalid(format!("no shard {to}")));
            }
            let mut moves = Vec::new();
            if from != to {
                coord
                    .handoff(&SourceMove { source, from, to })
                    .map_err(|e| cluster_error(&e))?;
                moves.push((source, from, to));
            }
            Ok(MoveReport {
                moves,
                map_version: coord.version(),
            })
        })
    }

    fn rebalance(&mut self, threshold: usize) -> Result<MoveReport, ServeError> {
        self.with(|coord| {
            // execute the map's deterministic plan move by move so the
            // report carries the same `(source, from, to)` shape the
            // in-process engines emit
            let plan = coord.map().plan_rebalance(threshold);
            let mut moves = Vec::new();
            for mv in &plan.moves {
                coord.handoff(mv).map_err(|e| cluster_error(&e))?;
                moves.push((mv.source, mv.from, mv.to));
            }
            Ok(MoveReport {
                moves,
                map_version: coord.version(),
            })
        })
    }

    fn info(&self) -> EngineInfo {
        let guard = self.coord.lock().unwrap();
        match guard.as_ref() {
            Some(coord) => EngineInfo {
                n: coord.graph().n(),
                m: coord.graph().m(),
                workers: coord.num_shards(),
                backend: "cluster".to_string(),
                map_version: Some(coord.version()),
                live_wal_bytes: None,
                sealed_history_bytes: None,
                last_compaction_seq: None,
            },
            None => EngineInfo {
                n: 0,
                m: 0,
                workers: 0,
                backend: "cluster".to_string(),
                map_version: None,
                live_wal_bytes: None,
                sealed_history_bytes: None,
                last_compaction_seq: None,
            },
        }
    }
}

impl ServeEngine for ServedSession {
    fn apply_batch(&mut self, updates: &[Update]) -> Result<(), ServeError> {
        self.session
            .apply_stream(updates)
            .map_err(|e| serve_error(&e))
    }

    fn scores_vbc(&mut self) -> Result<Vec<f64>, ServeError> {
        Ok(self
            .session
            .scores()
            .map_err(|e| serve_error(&e))?
            .scores
            .vbc)
    }

    fn take_score_delta(&mut self) -> Result<ScoreDelta, ServeError> {
        self.session.take_score_delta().map_err(|e| serve_error(&e))
    }

    fn reduce_exact(&mut self) -> Result<(Vec<f64>, Vec<f64>, Duration), ServeError> {
        let reduced = self.session.reduce_exact().map_err(|e| serve_error(&e))?;
        Ok((reduced.scores.vbc, reduced.scores.ebc, reduced.wall))
    }

    fn checkpoint(&mut self) -> Result<(), ServeError> {
        self.session.checkpoint().map_err(|e| serve_error(&e))
    }

    fn handoff(&mut self, source: u32, to: usize) -> Result<MoveReport, ServeError> {
        let outcome = self
            .session
            .handoff(source, to)
            .map_err(|e| serve_error(&e))?;
        Ok(MoveReport {
            moves: outcome.moves,
            map_version: outcome.map_version,
        })
    }

    fn rebalance(&mut self, threshold: usize) -> Result<MoveReport, ServeError> {
        let outcome = self
            .session
            .rebalance(threshold)
            .map_err(|e| serve_error(&e))?;
        Ok(MoveReport {
            moves: outcome.moves,
            map_version: outcome.map_version,
        })
    }

    fn info(&self) -> EngineInfo {
        let history = self.session.history_stats();
        EngineInfo {
            n: self.session.graph().n(),
            m: self.session.graph().m(),
            workers: self.session.workers(),
            backend: self.backend_label().to_string(),
            map_version: self.session.shard_map().map(|m| m.version),
            live_wal_bytes: history.as_ref().map(|h| h.live_wal_bytes),
            sealed_history_bytes: history.as_ref().map(|h| h.sealed_bytes),
            last_compaction_seq: history.as_ref().map(|h| h.last_compaction_seq),
        }
    }
}
