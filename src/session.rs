//! The unified `Session` facade: one builder, one engine surface, one
//! durable-restart story for every embodiment of the framework.
//!
//! The paper presents a single algorithm with interchangeable embodiments —
//! `BD[·]` in memory or on disk, sources on one machine or partitioned over
//! `p` workers. A [`SessionBuilder`] picks the embodiment
//! ([`Backend::Memory`], [`Backend::Disk`], [`Backend::Sharded`]), the
//! worker count, the kernel configuration and the durability policy, and
//! [`SessionBuilder::build`] yields one [`Session`] driving either a
//! single-machine `BetweennessState` or a pooled `ClusterEngine` behind the
//! [`EbcEngine`] trait — the split disappears at the call site:
//!
//! ```
//! use streaming_bc::{Backend, Session, Update};
//! use streaming_bc::graph::Graph;
//!
//! let mut g = Graph::with_vertices(4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
//!     g.add_edge(u, v).unwrap();
//! }
//! let mut session = Session::builder()
//!     .backend(Backend::Memory)
//!     .workers(3)
//!     .build(&g)?;
//! session.apply(Update::add(1, 3))?;
//! session.apply(Update::remove(0, 2))?;
//! assert_eq!(session.top_k(2)?.len(), 2);
//! # Ok::<(), streaming_bc::SessionError>(())
//! ```
//!
//! ## Durable sessions and re-bootstrap-free restart
//!
//! Disk and sharded sessions live in a **session directory** holding the
//! `BD[·]` store files plus a checksummed `session.manifest` that embeds a
//! structural graph snapshot (exact edge-slot assignment, free-list order
//! and adjacency order — see [`ebc_graph::snapshot`]) and the ownership-map
//! version. [`Session::open`] rebuilds the whole session from that
//! directory after a crash or shutdown **without re-running the Brandes
//! bootstrap**: the store layer's recovery settles the records
//! (`DiskBdStore::open` / `ShardSet::open`), the graph is restored from the
//! snapshot, and each worker rehydrates its partial scores from its own
//! recovered records (`ClusterEngine::resume`). The resumed session's
//! [`Session::reduce_exact`] is bitwise identical to the pre-kill value.
//!
//! DESIGN.md §9 documents the directory layout, the manifest format and the
//! resume protocol in full.

use ebc_core::api::{EbcEngine, EbcError, RebalanceOutcome, Reduced, ShardAssignment};
use ebc_core::bd::MemoryBdStore;
use ebc_core::incremental::UpdateConfig;
use ebc_core::rankindex::{RankIndex, ScoreDelta};
use ebc_core::ranking;
use ebc_core::state::{BetweennessState, Update};
use ebc_core::verify::Divergence;
use ebc_engine::{ClusterEngine, EngineError};
use ebc_graph::snapshot::SnapshotError;
use ebc_graph::stream::EdgeOp;
use ebc_graph::{Graph, VertexId};
use ebc_store::history::{read_sealed, write_sealed, HistoryError, HistoryLog, HistoryStats};
use ebc_store::{fnv1a64, BdStore, CodecKind, DiskBdStore, ShardSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Name of the session manifest inside a durable session directory.
const MANIFEST_NAME: &str = "session.manifest";
/// First line of every session manifest.
const MANIFEST_MAGIC: &str = "EBCSESSION v1";
/// Data file of a single-machine disk session.
const DISK_STORE_NAME: &str = "bd.ebc";
/// Identity stamp of a single-machine disk session (see [`write_stamp`]).
const STAMP_NAME: &str = "session.stamp";
/// Sealed copy of the bootstrap graph snapshot — the replay engine's
/// genesis state (see [`Session::replay_to`]).
const GENESIS_NAME: &str = "genesis.snap";
/// Magic of the sealed genesis file.
const GENESIS_MAGIC: &[u8; 8] = b"EBCGNSS1";

/// Where a session keeps its `BD[·]` records — the paper's MO vs. DO axis
/// plus the single-machine vs. partitioned axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backend {
    /// Everything resident (the paper's MO configuration). Not durable:
    /// [`Session::open`] cannot restore a memory session.
    Memory,
    /// Single-machine out-of-core records (DO) in the given session
    /// directory; durable and restartable.
    Disk(PathBuf),
    /// One store file per worker (`shard-<k>.ebc` + shard manifest) in the
    /// given session directory, driven by the `p`-worker cluster engine;
    /// durable, restartable, and rebalance-capable.
    Sharded(PathBuf),
}

/// When a durable session rewrites its manifest (graph snapshot + map
/// version) and flushes its stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Checkpoint {
    /// After every [`Session::apply`] and at the end of every
    /// [`Session::apply_stream`] batch — a kill between calls always
    /// reopens cleanly. The default for durable backends.
    #[default]
    EveryApply,
    /// Only on explicit [`Session::checkpoint`] (and at build time). Fastest
    /// streaming; a kill loses updates since the last checkpoint.
    Manual,
}

/// Retention policy of a durable session's update history (DESIGN.md §14).
///
/// Every applied update is journaled into the session directory's history
/// WAL. At checkpoint time, once the live WAL outgrows
/// `max_live_wal_bytes`, the checkpointed prefix is **compacted**: sealed
/// into an immutable checksummed segment when `keep_history` is `true`
/// (enabling [`Session::replay_to`] back to seq 1), or discarded outright
/// when it is `false` (bounded disk, no time travel). Either way the live
/// WAL stays bounded by roughly `max_live_wal_bytes` plus one
/// checkpoint interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Seal compacted prefixes into replayable history segments (`true`,
    /// the default) instead of discarding them (`false`).
    pub keep_history: bool,
    /// Compact at the first checkpoint after the live history WAL exceeds
    /// this many bytes. `0` compacts at every checkpoint.
    pub max_live_wal_bytes: u64,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            keep_history: true,
            max_live_wal_bytes: 1 << 20,
        }
    }
}

/// Errors from building, driving, or reopening a [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// The underlying engine failed (graph validation, storage, poisoned
    /// cluster...).
    Engine(EbcError),
    /// Session-directory I/O failed.
    Io(std::io::Error),
    /// A builder configuration that names no valid embodiment.
    Config(String),
    /// The session directory's manifest, snapshot or stores are corrupt or
    /// mutually inconsistent.
    Corrupt(String),
    /// The `BD[·]` record files cover a different source set than the
    /// manifest's graph snapshot — the signature of a [`Checkpoint::Manual`]
    /// session killed after growth updates landed durably in the stores but
    /// before the next explicit [`Session::checkpoint`]. The records are
    /// *ahead* of the manifest: resuming would silently pair a stale graph
    /// with newer records, so [`Session::open`] reports the skew instead of
    /// replaying. Recover by rebuilding from the last checkpointed history
    /// (or discarding the directory).
    RecordsAhead {
        /// Ownership-map version the at-rest manifest recorded.
        manifest_map_version: u64,
        /// Ownership-map version the recovered shard files carry.
        store_version: u64,
        /// Sources in the manifest's graph snapshot (its `n`).
        manifest_sources: usize,
        /// Sources the recovered record files actually own.
        record_sources: usize,
    },
    /// The session's history segments do not tile the update sequence:
    /// records `missing_first ..= missing_last` are gone (a segment file
    /// was deleted, or a replay was asked to reach below a
    /// `keep_history = false` truncation point). Replaying across the
    /// hole would silently reconstruct a different graph, so the gap is
    /// typed and named instead.
    HistoryGap {
        /// First missing seq.
        missing_first: u64,
        /// Last missing seq.
        missing_last: u64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Engine(e) => write!(f, "engine error: {e}"),
            SessionError::Io(e) => write!(f, "session io error: {e}"),
            SessionError::Config(msg) => write!(f, "invalid session config: {msg}"),
            SessionError::Corrupt(msg) => write!(f, "session directory corrupt: {msg}"),
            SessionError::RecordsAhead {
                manifest_map_version,
                store_version,
                manifest_sources,
                record_sources,
            } => write!(
                f,
                "records are ahead of the manifest: stores own {record_sources} sources \
                 (map v{store_version}), manifest snapshot has {manifest_sources} \
                 (map v{manifest_map_version}) — a Checkpoint::Manual session died \
                 after un-checkpointed growth"
            ),
            SessionError::HistoryGap {
                missing_first,
                missing_last,
            } => write!(
                f,
                "history has a gap: records {missing_first}..={missing_last} are missing \
                 (deleted segment, or replay below a keep_history=false truncation point)"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EbcError> for SessionError {
    fn from(e: EbcError) -> Self {
        SessionError::Engine(e)
    }
}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<ebc_store::BdError> for SessionError {
    fn from(e: ebc_store::BdError) -> Self {
        SessionError::Engine(EbcError::Store(e))
    }
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e.into())
    }
}

impl From<ebc_core::state::StateError> for SessionError {
    fn from(e: ebc_core::state::StateError) -> Self {
        SessionError::Engine(e.into())
    }
}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => SessionError::Io(io),
            SnapshotError::Corrupt(msg) => SessionError::Corrupt(format!("graph snapshot: {msg}")),
        }
    }
}

impl From<HistoryError> for SessionError {
    fn from(e: HistoryError) -> Self {
        match e {
            HistoryError::Io(io) => SessionError::Io(io),
            HistoryError::Corrupt(msg) => SessionError::Corrupt(format!("history: {msg}")),
            HistoryError::Gap {
                missing_first,
                missing_last,
            } => SessionError::HistoryGap {
                missing_first,
                missing_last,
            },
        }
    }
}

/// Configures and builds a [`Session`] — the one constructor for every
/// embodiment (see the module docs and the README migration table).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    backend: Backend,
    workers: usize,
    cfg: UpdateConfig,
    codec: CodecKind,
    checkpoint: Checkpoint,
    compaction: CompactionConfig,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            backend: Backend::Memory,
            workers: 1,
            cfg: UpdateConfig::default(),
            codec: CodecKind::Wide,
            checkpoint: Checkpoint::default(),
            compaction: CompactionConfig::default(),
        }
    }
}

impl SessionBuilder {
    /// A builder with the defaults: in-memory backend, one worker, default
    /// kernel configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the storage backend (see [`Backend`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Number of map-phase workers `p`. With `p == 1` and a
    /// [`Backend::Memory`]/[`Backend::Disk`] backend the session runs the
    /// single-machine state; `p > 1` spawns the persistent worker pool.
    pub fn workers(mut self, p: usize) -> Self {
        self.workers = p;
        self
    }

    /// Kernel configuration (pruning and predecessor-maintenance knobs).
    pub fn config(mut self, cfg: UpdateConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Record codec for on-disk backends (ignored by [`Backend::Memory`]).
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Durability policy for disk-backed backends (see [`Checkpoint`]).
    pub fn checkpoint(mut self, policy: Checkpoint) -> Self {
        self.checkpoint = policy;
        self
    }

    /// History retention and compaction policy for disk-backed backends
    /// (see [`CompactionConfig`]; ignored by [`Backend::Memory`], which
    /// keeps no history).
    pub fn compaction(mut self, cfg: CompactionConfig) -> Self {
        self.compaction = cfg;
        self
    }

    /// Bootstrap a session over `graph`: one Brandes pass over every source
    /// (step 1 of the framework), records landing in the configured
    /// backend. For durable backends the session directory is created and
    /// the initial manifest checkpointed, so the session is
    /// [`Session::open`]-able from that moment on.
    pub fn build(self, graph: &Graph) -> Result<Session, SessionError> {
        let SessionBuilder {
            backend,
            workers,
            cfg,
            codec,
            checkpoint,
            compaction,
        } = self;
        if workers == 0 {
            return Err(SessionError::Config(
                "workers(0): a session needs at least one worker".into(),
            ));
        }
        match backend {
            Backend::Memory => {
                let engine: Box<dyn EbcEngine + Send> = if workers == 1 {
                    Box::new(BetweennessState::new_with(graph.clone(), cfg))
                } else {
                    Box::new(ClusterEngine::new_with(graph, workers, cfg, |_w, n| {
                        Ok(MemoryBdStore::new(n))
                    })?)
                };
                Ok(Session {
                    engine,
                    durable: None,
                    rank: RankIndex::new(),
                    history: None,
                    seq: 0,
                })
            }
            Backend::Disk(dir) => {
                if workers != 1 {
                    return Err(SessionError::Config(format!(
                        "Backend::Disk is the single-machine DO embodiment; \
                         use Backend::Sharded for workers({workers})"
                    )));
                }
                std::fs::create_dir_all(&dir)?;
                let store = DiskBdStore::create(dir.join(DISK_STORE_NAME), graph.n(), codec)?;
                let state = BetweennessState::new_into_store(graph.clone(), store, cfg.clone())?;
                let snapshot = graph.snapshot_bytes();
                let session_id = fnv1a64(&snapshot);
                // bind the store directory to this session (the disk
                // analogue of the shard manifest's graph stamp): a foreign
                // manifest grafted onto this directory is rejected at open
                write_stamp(&dir, session_id)?;
                // seal the genesis snapshot and start the update history:
                // replay reconstructs scores-at-seq from exactly these two
                write_sealed(&dir.join(GENESIS_NAME), GENESIS_MAGIC, &snapshot)?;
                let history = HistoryLog::create(&dir, compaction.keep_history)?;
                let durable = Durable {
                    dir,
                    kind: DurableKind::Disk,
                    workers: 1,
                    cfg,
                    codec,
                    checkpoint,
                    compaction,
                    session_id,
                };
                let mut session = Session {
                    engine: Box::new(state),
                    durable: Some(durable),
                    rank: RankIndex::new(),
                    history: Some(history),
                    seq: 0,
                };
                session.checkpoint()?;
                Ok(session)
            }
            Backend::Sharded(dir) => {
                std::fs::create_dir_all(&dir)?;
                let snapshot = graph.snapshot_bytes();
                let session_id = fnv1a64(&snapshot);
                let mut set = ShardSet::create(&dir, graph.n(), workers, codec)?;
                // bind the shard files to this session before the workers
                // take them over
                set.set_graph_stamp(session_id)?;
                let mut stores = set.into_stores().into_iter();
                let engine = ClusterEngine::new_with(graph, workers, cfg.clone(), |_w, _n| {
                    stores
                        .next()
                        .ok_or_else(|| EngineError::Poisoned("shard/worker count mismatch".into()))
                })?;
                write_sealed(&dir.join(GENESIS_NAME), GENESIS_MAGIC, &snapshot)?;
                let history = HistoryLog::create(&dir, compaction.keep_history)?;
                let durable = Durable {
                    dir,
                    kind: DurableKind::Sharded,
                    workers,
                    cfg,
                    codec,
                    checkpoint,
                    compaction,
                    session_id,
                };
                let mut session = Session {
                    engine: Box::new(engine),
                    durable: Some(durable),
                    rank: RankIndex::new(),
                    history: Some(history),
                    seq: 0,
                };
                session.checkpoint()?;
                Ok(session)
            }
        }
    }
}

/// Which durable embodiment a session directory holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DurableKind {
    Disk,
    Sharded,
}

impl DurableKind {
    fn as_str(self) -> &'static str {
        match self {
            DurableKind::Disk => "disk",
            DurableKind::Sharded => "sharded",
        }
    }
}

/// Durability bookkeeping of a disk-backed session.
#[derive(Debug, Clone)]
struct Durable {
    dir: PathBuf,
    kind: DurableKind,
    workers: usize,
    cfg: UpdateConfig,
    codec: CodecKind,
    checkpoint: Checkpoint,
    compaction: CompactionConfig,
    /// Checksum of the *bootstrap* graph snapshot — the session's identity,
    /// also stamped into the shard manifest so a foreign manifest cannot be
    /// combined with this directory's stores.
    session_id: u64,
}

/// Parsed `session.manifest` contents.
struct Manifest {
    kind: DurableKind,
    workers: usize,
    cfg: UpdateConfig,
    codec: CodecKind,
    session_id: u64,
    map_version: u64,
    /// Updates applied when the manifest was written; 0 in manifests that
    /// predate the history subsystem.
    seq: u64,
    snapshot: Vec<u8>,
}

fn corrupt(msg: impl Into<String>) -> SessionError {
    SessionError::Corrupt(msg.into())
}

/// Write the disk session's identity stamp (`session.stamp`): the analogue
/// of the sharded manifest's graph stamp for the single-store layout.
/// Written once at build; immutable for the session's lifetime.
fn write_stamp(dir: &Path, session_id: u64) -> Result<(), SessionError> {
    let path = dir.join(STAMP_NAME);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("EBCSTAMP v1\n{session_id:016x}\n"))?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

fn read_stamp(dir: &Path) -> Result<u64, SessionError> {
    let raw = std::fs::read_to_string(dir.join(STAMP_NAME))
        .map_err(|e| corrupt(format!("no session stamp in {}: {e}", dir.display())))?;
    let mut lines = raw.lines();
    if lines.next() != Some("EBCSTAMP v1") {
        return Err(corrupt("bad session stamp magic"));
    }
    let hex = lines
        .next()
        .ok_or_else(|| corrupt("session stamp truncated"))?;
    u64::from_str_radix(hex, 16).map_err(|_| corrupt("bad session stamp value"))
}

fn encode_manifest(d: &Durable, graph: &Graph, map_version: u64, seq: u64) -> Vec<u8> {
    let snapshot = graph.snapshot_bytes();
    let mut buf = Vec::with_capacity(snapshot.len() + 256);
    buf.extend_from_slice(MANIFEST_MAGIC.as_bytes());
    buf.push(b'\n');
    let codec = match d.codec {
        CodecKind::Wide => "wide",
        CodecKind::Paper => "paper",
    };
    let header = format!(
        "backend={}\nworkers={}\ncodec={codec}\nprune={}\npreds={}\n\
         session={:016x}\nmap_version={map_version}\nseq={seq}\nsnapshot_len={}\n",
        d.kind.as_str(),
        d.workers,
        u8::from(d.cfg.prune_unchanged),
        u8::from(d.cfg.maintain_predecessors),
        d.session_id,
        snapshot.len(),
    );
    buf.extend_from_slice(header.as_bytes());
    buf.extend_from_slice(&snapshot);
    let ck = fnv1a64(&buf);
    buf.extend_from_slice(&ck.to_le_bytes());
    buf
}

fn decode_manifest(raw: &[u8]) -> Result<Manifest, SessionError> {
    if raw.len() < 16 {
        return Err(corrupt("session manifest truncated"));
    }
    let (body, ck_bytes) = raw.split_at(raw.len() - 8);
    let ck = u64::from_le_bytes(ck_bytes.try_into().expect("8 bytes"));
    if ck != fnv1a64(body) {
        return Err(corrupt("session manifest checksum mismatch"));
    }
    // Header lines (magic + key=value fields, `snapshot_len` always last),
    // then the embedded snapshot bytes. Manifests that predate the history
    // subsystem have no `seq=` line — 9 lines instead of 10 — so the
    // header is read until `snapshot_len` rather than by a fixed count.
    let mut pos = 0usize;
    let mut lines = Vec::with_capacity(10);
    loop {
        if lines.len() > 16 {
            return Err(corrupt("session manifest header never ends"));
        }
        let nl = body[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| corrupt("session manifest header truncated"))?;
        let line = std::str::from_utf8(&body[pos..pos + nl])
            .map_err(|_| corrupt("session manifest header not utf-8"))?;
        lines.push(line);
        pos += nl + 1;
        if line.starts_with("snapshot_len=") {
            break;
        }
    }
    if lines[0] != MANIFEST_MAGIC {
        return Err(corrupt(format!("unknown manifest magic {:?}", lines[0])));
    }
    let field = |idx: usize, key: &str| -> Result<&str, SessionError> {
        lines[idx]
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| corrupt(format!("manifest line {idx} is not `{key}=...`")))
    };
    let kind = match field(1, "backend")? {
        "disk" => DurableKind::Disk,
        "sharded" => DurableKind::Sharded,
        other => return Err(corrupt(format!("unknown backend {other:?}"))),
    };
    let workers: usize = field(2, "workers")?
        .parse()
        .map_err(|_| corrupt("bad workers field"))?;
    let codec = match field(3, "codec")? {
        "wide" => CodecKind::Wide,
        "paper" => CodecKind::Paper,
        other => return Err(corrupt(format!("unknown codec {other:?}"))),
    };
    let flag = |v: &str| matches!(v, "1");
    let cfg = UpdateConfig {
        prune_unchanged: flag(field(4, "prune")?),
        maintain_predecessors: flag(field(5, "preds")?),
    };
    let session_id = u64::from_str_radix(field(6, "session")?, 16)
        .map_err(|_| corrupt("bad session id field"))?;
    let map_version: u64 = field(7, "map_version")?
        .parse()
        .map_err(|_| corrupt("bad map_version field"))?;
    let (seq, snap_idx) = if lines.len() == 10 {
        let seq: u64 = field(8, "seq")?
            .parse()
            .map_err(|_| corrupt("bad seq field"))?;
        (seq, 9)
    } else {
        (0, 8) // legacy pre-history manifest
    };
    let snapshot_len: usize = field(snap_idx, "snapshot_len")?
        .parse()
        .map_err(|_| corrupt("bad snapshot_len field"))?;
    if body.len() - pos != snapshot_len {
        return Err(corrupt(format!(
            "manifest embeds {} snapshot bytes, header says {snapshot_len}",
            body.len() - pos
        )));
    }
    Ok(Manifest {
        kind,
        workers,
        cfg,
        codec,
        session_id,
        map_version,
        seq,
        snapshot: body[pos..].to_vec(),
    })
}

/// Serialize one update for a history record: `[op u8][u u32][v u32]` LE.
fn encode_update(u: &Update) -> [u8; 9] {
    let mut buf = [0u8; 9];
    buf[0] = match u.op {
        EdgeOp::Add => 0,
        EdgeOp::Remove => 1,
    };
    buf[1..5].copy_from_slice(&u.u.to_le_bytes());
    buf[5..9].copy_from_slice(&u.v.to_le_bytes());
    buf
}

fn decode_update(payload: &[u8]) -> Result<Update, SessionError> {
    if payload.len() != 9 || payload[0] > 1 {
        return Err(corrupt("history record is not an encoded edge update"));
    }
    let u = u32::from_le_bytes(payload[1..5].try_into().expect("4"));
    let v = u32::from_le_bytes(payload[5..9].try_into().expect("4"));
    Ok(match payload[0] {
        0 => Update::add(u, v),
        _ => Update::remove(u, v),
    })
}

/// One online-betweenness session over an evolving graph — the facade's
/// single entry point for every embodiment (see the module docs).
pub struct Session {
    engine: Box<dyn EbcEngine + Send>,
    durable: Option<Durable>,
    /// Incrementally maintained score order, refreshed lazily from the
    /// engine's score deltas on ranked reads (`top_k`, `rank_of`,
    /// `percentile`) — so the write path never pays a reduce for it.
    rank: RankIndex,
    /// The update history journal of a durable session; `None` for memory
    /// sessions and directories that predate the history subsystem.
    history: Option<HistoryLog>,
    /// Updates applied over this session's lifetime (sealed + live).
    seq: u64,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("workers", &self.engine.workers())
            .field("n", &self.engine.graph().n())
            .field("m", &self.engine.graph().m())
            .field("dir", &self.durable.as_ref().map(|d| d.dir.display()))
            .finish()
    }
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Reopen a durable session directory — the re-bootstrap-free restart.
    ///
    /// Reads the checksummed manifest, restores the graph from its embedded
    /// structural snapshot, lets the store layer recover the `BD[·]` files
    /// (rolling forward/back any mutation a kill tore in half), and
    /// rehydrates the engine from the recovered records: no Brandes
    /// iteration runs (`Session::brandes_runs` reports 0 for a resumed
    /// sharded session), and [`Session::reduce_exact`] is bitwise identical
    /// to the pre-kill scores.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Session, SessionError> {
        let dir = dir.as_ref().to_path_buf();
        let raw = std::fs::read(dir.join(MANIFEST_NAME))
            .map_err(|e| corrupt(format!("no session manifest in {}: {e}", dir.display())))?;
        let manifest = decode_manifest(&raw)?;
        let graph = Graph::from_snapshot_bytes(&manifest.snapshot)?;
        // Recover the update history first: a gap (deleted segment) is a
        // typed refusal before any store is touched, and an interrupted
        // seal/truncate is finished here. Directories from before the
        // history subsystem simply have none.
        let history = if HistoryLog::exists(&dir) {
            Some(HistoryLog::open(&dir)?)
        } else {
            None
        };
        // Under Checkpoint::Manual a kill can land updates in the history
        // WAL after the last manifest rewrite; the history is the longer
        // (and durable) record, so the larger count wins.
        let seq = history
            .as_ref()
            .map_or(manifest.seq, |h| h.last_seq().max(manifest.seq));
        match manifest.kind {
            DurableKind::Disk => {
                let stamp = read_stamp(&dir)?;
                if stamp != manifest.session_id {
                    return Err(corrupt(format!(
                        "store directory belongs to session {stamp:016x}, \
                         manifest names {:016x}",
                        manifest.session_id
                    )));
                }
                let store = DiskBdStore::open(dir.join(DISK_STORE_NAME))?;
                if store.n() != graph.n() {
                    return Err(corrupt(format!(
                        "store holds records of {} vertices, snapshot has {}",
                        store.n(),
                        graph.n()
                    )));
                }
                let state = BetweennessState::resume(graph, store, manifest.cfg.clone())?;
                Ok(Session {
                    engine: Box::new(state),
                    rank: RankIndex::new(),
                    durable: Some(Durable {
                        dir,
                        kind: DurableKind::Disk,
                        workers: 1,
                        cfg: manifest.cfg,
                        codec: manifest.codec,
                        checkpoint: Checkpoint::EveryApply,
                        compaction: CompactionConfig {
                            keep_history: history.as_ref().is_some_and(HistoryLog::keep_history),
                            ..CompactionConfig::default()
                        },
                        session_id: manifest.session_id,
                    }),
                    history,
                    seq,
                })
            }
            DurableKind::Sharded => {
                let set = ShardSet::open(&dir)?;
                if set.graph_stamp() != 0 && set.graph_stamp() != manifest.session_id {
                    return Err(corrupt(format!(
                        "shard files belong to session {:016x}, manifest names {:016x}",
                        set.graph_stamp(),
                        manifest.session_id
                    )));
                }
                if set.num_shards() != manifest.workers {
                    return Err(corrupt(format!(
                        "{} shard files for a {}-worker session",
                        set.num_shards(),
                        manifest.workers
                    )));
                }
                // a Manual-checkpoint session killed after durable growth
                // leaves the record files owning sources the manifest's
                // graph snapshot has never heard of (or vice versa when a
                // manifest is grafted in): pairing them would replay new
                // records against a stale graph. Detect and report, never
                // silently resume. Version-only skew (same source set, the
                // map merely ahead of the at-rest manifest after live
                // handoffs) stays resumable below.
                let record_sources: usize = set.assignment().iter().map(Vec::len).sum();
                if record_sources != graph.n() {
                    return Err(SessionError::RecordsAhead {
                        manifest_map_version: manifest.map_version,
                        store_version: set.version(),
                        manifest_sources: graph.n(),
                        record_sources,
                    });
                }
                // live handoffs advance the in-memory map faster than the
                // at-rest manifest; resume from whichever version is ahead
                let version = set.version().max(manifest.map_version);
                let stores = set.into_stores();
                let engine = ClusterEngine::resume(&graph, manifest.cfg.clone(), stores, version)?;
                Ok(Session {
                    engine: Box::new(engine),
                    rank: RankIndex::new(),
                    durable: Some(Durable {
                        dir,
                        kind: DurableKind::Sharded,
                        workers: manifest.workers,
                        cfg: manifest.cfg,
                        codec: manifest.codec,
                        checkpoint: Checkpoint::EveryApply,
                        compaction: CompactionConfig {
                            keep_history: history.as_ref().is_some_and(HistoryLog::keep_history),
                            ..CompactionConfig::default()
                        },
                        session_id: manifest.session_id,
                    }),
                    history,
                    seq,
                })
            }
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        self.engine.graph()
    }

    /// Number of map-phase workers (1 for single-machine embodiments).
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// The session directory of a durable session, `None` for
    /// [`Backend::Memory`].
    pub fn dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Apply one edge update; durable sessions journal it into the update
    /// history and, under [`Checkpoint::EveryApply`], checkpoint
    /// afterwards.
    pub fn apply(&mut self, update: Update) -> Result<(), SessionError> {
        self.engine.apply(update)?;
        let recorded = self.record_applied(&[update]);
        let checkpointed = self.auto_checkpoint();
        recorded?;
        checkpointed
    }

    /// Apply a batch of updates in order (partitioned embodiments pipeline
    /// the dispatch); durable sessions journal the applied prefix into the
    /// update history and, under [`Checkpoint::EveryApply`], checkpoint
    /// once at the end of the batch.
    ///
    /// On a mid-batch validation error the already-applied prefix still
    /// completed (and its record writes are durable), so exactly that
    /// prefix is journaled and the checkpoint runs *before* the error is
    /// returned — the manifest always covers what the stores hold. A
    /// worker-side failure poisons the engine; the checkpoint then fails
    /// too and the original error wins.
    pub fn apply_stream(&mut self, updates: &[Update]) -> Result<(), SessionError> {
        let (applied, result) = self.engine.apply_stream_counted(updates);
        let recorded = self.record_applied(&updates[..applied]);
        let checkpointed = self.auto_checkpoint();
        result?;
        recorded?;
        checkpointed
    }

    /// Journal `updates` (already applied by the engine) into the history
    /// WAL, advancing the session seq.
    fn record_applied(&mut self, updates: &[Update]) -> Result<(), SessionError> {
        if self.history.is_none() {
            self.seq += updates.len() as u64;
            return Ok(());
        }
        let map_version = self.engine.shard_map_version().unwrap_or(0);
        let history = self.history.as_mut().expect("history checked above");
        for update in updates {
            self.seq += 1;
            history.append(self.seq, map_version, &encode_update(update))?;
        }
        Ok(())
    }

    /// The fast query path: incrementally maintained scores (cluster
    /// sessions fold per-worker partials — last-bit dependent on `p`).
    pub fn scores(&mut self) -> Result<Reduced, SessionError> {
        Ok(self.engine.scores()?)
    }

    /// The partition-invariant exact reduction: bitwise identical across
    /// embodiments, worker counts and restarts for the same update history.
    pub fn reduce_exact(&mut self) -> Result<Reduced, SessionError> {
        Ok(self.engine.reduce_exact()?)
    }

    /// Edge betweenness of `{u, v}`, `None` if the edge is absent.
    pub fn edge_centrality(
        &mut self,
        u: VertexId,
        v: VertexId,
    ) -> Result<Option<f64>, SessionError> {
        Ok(self.engine.edge_centrality(u, v)?)
    }

    /// The `k` currently most central vertices, ties toward smaller id.
    ///
    /// Served from the session's incrementally maintained
    /// [`RankIndex`] in `O(k + log n)` after an `O(changed)` refresh —
    /// bitwise the same list [`ebc_core::ranking::top_k`] would produce
    /// from a fresh [`Session::scores`] read, without the per-query
    /// re-sort.
    pub fn top_k(&mut self, k: usize) -> Result<Vec<VertexId>, SessionError> {
        self.refresh_rank()?;
        Ok(self.rank.top_k(k))
    }

    /// 1-based rank of `v` in the current centrality order (1 = most
    /// central, ties toward smaller id); `None` for an unknown vertex.
    /// `O(log n)` after the delta refresh.
    pub fn rank_of(&mut self, v: VertexId) -> Result<Option<usize>, SessionError> {
        self.refresh_rank()?;
        Ok(self.rank.rank_of(v))
    }

    /// Fraction of vertices ranked at or below `v` — `1.0` for the
    /// current leader, `1/n` for the last place; `None` for an unknown
    /// vertex. `O(log n)` after the delta refresh.
    pub fn percentile(&mut self, v: VertexId) -> Result<Option<f64>, SessionError> {
        self.refresh_rank()?;
        Ok(self.rank.percentile(v))
    }

    /// Drain the engine's score delta since the last drain, keeping the
    /// session's own [`RankIndex`] in sync before handing the delta to the
    /// caller (the serve writer feeds its snapshot index from this).
    pub fn take_score_delta(&mut self) -> Result<ScoreDelta, SessionError> {
        let delta = self.engine.take_score_delta()?;
        self.rank.apply(&delta);
        Ok(delta)
    }

    /// A read-only view of the session's rank index, refreshed to the
    /// engine's current scores.
    pub fn rank_index(&mut self) -> Result<&RankIndex, SessionError> {
        self.refresh_rank()?;
        Ok(&self.rank)
    }

    fn refresh_rank(&mut self) -> Result<(), SessionError> {
        let delta = self.engine.take_score_delta()?;
        self.rank.apply(&delta);
        Ok(())
    }

    /// Jaccard similarity between this session's current top-`k` vertex set
    /// and the top-`k` of a reference score vector
    /// ([`ebc_core::ranking::jaccard_top_k`]) — the ranking-quality metric
    /// the Bergamini et al. (arXiv:1409.6241) approximation comparison
    /// scores against the exact maintained ranking.
    pub fn jaccard_top_k(&mut self, reference: &[f64], k: usize) -> Result<f64, SessionError> {
        let reduced = self.engine.scores()?;
        Ok(ranking::jaccard_top_k(&reduced.scores.vbc, reference, k))
    }

    /// Compare the session's exact scores against a fresh Brandes
    /// recomputation on the current graph; errors with
    /// [`EbcError::Diverged`] beyond `tol`.
    pub fn verify(&mut self, tol: f64) -> Result<Divergence, SessionError> {
        Ok(self.engine.verify(tol)?)
    }

    /// Brandes single-source iterations this session's engine has run —
    /// `n` after a fresh bootstrap, **0** right after [`Session::open`] of a
    /// sharded session (the witness that restart skipped the bootstrap).
    /// `None` for single-machine embodiments, which do not count.
    pub fn brandes_runs(&self) -> Option<u64> {
        self.engine.brandes_runs()
    }

    /// The current source→shard ownership of a partitioned session — which
    /// worker owns which sources, and the version of the map that says so.
    /// `None` for single-machine embodiments (one store, ownership never
    /// moves).
    ///
    /// ```
    /// use streaming_bc::{Backend, Session, Update};
    /// use streaming_bc::graph::Graph;
    ///
    /// let mut g = Graph::with_vertices(6);
    /// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
    ///     g.add_edge(u, v).unwrap();
    /// }
    /// let mut session = Session::builder()
    ///     .backend(Backend::Memory)
    ///     .workers(3)
    ///     .build(&g)?;
    ///
    /// // 6 sources partitioned over 3 workers, evenly at bootstrap
    /// let map = session.shard_map().expect("partitioned session");
    /// assert_eq!(map.assignment.len(), 3);
    /// assert_eq!(map.total(), 6);
    ///
    /// // drain worker 0 onto worker 1, then let rebalance restore the skew
    /// for s in map.assignment[0].clone() {
    ///     session.handoff(s, 1)?;
    /// }
    /// let outcome = session.rebalance(1)?;
    /// assert!(!outcome.moves.is_empty());
    /// assert!(session.shard_map().unwrap().skew() <= 1);
    ///
    /// // ownership moves are score-neutral
    /// session.apply(Update::add(0, 3))?;
    /// session.verify(1e-9)?;
    /// # Ok::<(), streaming_bc::SessionError>(())
    /// ```
    pub fn shard_map(&self) -> Option<ShardAssignment> {
        self.engine.shard_map()
    }

    /// Hand ownership of `source` to worker `to` (an explicit, out-of-plan
    /// move — e.g. draining a worker before maintenance). Score-neutral;
    /// durable sessions under [`Checkpoint::EveryApply`] checkpoint the
    /// advanced map version afterwards. Errors on single-machine sessions.
    /// See [`Session::shard_map`] for a worked example.
    pub fn handoff(
        &mut self,
        source: VertexId,
        to: usize,
    ) -> Result<RebalanceOutcome, SessionError> {
        let outcome = self.engine.handoff(source, to)?;
        self.auto_checkpoint()?;
        Ok(outcome)
    }

    /// Restore the owned-source skew invariant `max − min ≤ threshold`
    /// through the engine's journaled handoff path, returning the executed
    /// moves. Score-neutral; durable sessions under
    /// [`Checkpoint::EveryApply`] checkpoint afterwards so the manifest
    /// records the advanced map version. Errors on single-machine sessions.
    pub fn rebalance(&mut self, threshold: usize) -> Result<RebalanceOutcome, SessionError> {
        let outcome = self.engine.rebalance(threshold)?;
        self.auto_checkpoint()?;
        Ok(outcome)
    }

    /// Change the durability policy of a durable session (no effect on
    /// memory sessions); reopened sessions default to
    /// [`Checkpoint::EveryApply`].
    pub fn set_checkpoint(&mut self, policy: Checkpoint) {
        if let Some(d) = &mut self.durable {
            d.checkpoint = policy;
        }
    }

    /// Checkpoint a durable session now: flush every store, sync the
    /// history WAL, atomically rewrite the manifest with the current graph
    /// snapshot, ownership map version and seq — then, if the live history
    /// WAL has outgrown [`CompactionConfig::max_live_wal_bytes`], compact
    /// the freshly checkpointed prefix (seal it into a history segment, or
    /// discard it under `keep_history = false`) and truncate the live WAL.
    /// No-op for memory sessions.
    pub fn checkpoint(&mut self) -> Result<(), SessionError> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        self.engine.flush()?;
        if let Some(history) = &mut self.history {
            history.sync()?;
        }
        let map_version = self.engine.shard_map_version().unwrap_or(0);
        let bytes = encode_manifest(durable, self.engine.graph(), map_version, self.seq);
        let path = durable.dir.join(MANIFEST_NAME);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)?;
        // Compaction rides the checkpoint: everything ≤ self.seq is now
        // covered by the manifest, so the prefix is sealed exactly at the
        // checkpoint boundary — never past it.
        if let Some(history) = &mut self.history {
            if history.live_bytes() >= durable.compaction.max_live_wal_bytes {
                history.seal_upto(self.seq)?;
            }
        }
        Ok(())
    }

    fn auto_checkpoint(&mut self) -> Result<(), SessionError> {
        match &self.durable {
            Some(d) if d.checkpoint == Checkpoint::EveryApply => self.checkpoint(),
            _ => Ok(()),
        }
    }

    /// Updates applied over this session's lifetime — the seq the next
    /// update will extend. Survives restarts of durable sessions.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Byte accounting of the session's update history — live WAL bytes,
    /// sealed segment bytes, segment count, last compaction seq. `None`
    /// for memory sessions and pre-history directories.
    pub fn history_stats(&self) -> Option<HistoryStats> {
        self.history.as_ref().map(HistoryLog::stats)
    }

    /// Adjust the compaction threshold of a durable session (the retention
    /// mode is fixed when the directory is created; only
    /// `max_live_wal_bytes` takes effect here).
    pub fn set_compaction(&mut self, cfg: CompactionConfig) {
        if let Some(d) = &mut self.durable {
            d.compaction.max_live_wal_bytes = cfg.max_live_wal_bytes;
        }
    }

    /// Reconstruct the exact scores this session reported at history seq
    /// `seq` — the temporal-analytics read path.
    ///
    /// Replays records `1..=seq` (sealed segments + live WAL) through a
    /// fresh single-machine [`BetweennessState`] bootstrapped from the
    /// sealed genesis snapshot, then runs the partition-invariant exact
    /// reduction. Because `reduce_exact` is bitwise identical across
    /// embodiments, worker counts and restarts for the same update
    /// history, the returned scores are **bitwise equal** to what
    /// [`Session::reduce_exact`] returned live at that seq — regardless of
    /// backend, shard count, or how many compactions have run since.
    ///
    /// Errors with [`SessionError::HistoryGap`] when the requested range
    /// reaches below a `keep_history = false` truncation point, and with
    /// [`SessionError::Config`] on memory sessions / pre-history
    /// directories.
    pub fn replay_to(&self, seq: u64) -> Result<Reduced, SessionError> {
        let durable = self.durable.as_ref().ok_or_else(|| {
            SessionError::Config("memory sessions keep no history to replay".into())
        })?;
        let history = self.history.as_ref().ok_or_else(|| {
            SessionError::Config(
                "this session directory predates the history subsystem (no history.meta)".into(),
            )
        })?;
        let records = history.records_upto(seq)?;
        Ok(replay_records(&durable.dir, durable.cfg.clone(), &records)?.1)
    }

    /// [`Session::replay_to`] against a session directory on disk, without
    /// opening (or locking) the stores — what `sbc replay` runs. `at =
    /// None` replays the full history. Returns the replayed seq alongside
    /// the reduction.
    pub fn replay_dir<P: AsRef<Path>>(dir: P, at: Option<u64>) -> Result<Replayed, SessionError> {
        let dir = dir.as_ref();
        let raw = std::fs::read(dir.join(MANIFEST_NAME))
            .map_err(|e| corrupt(format!("no session manifest in {}: {e}", dir.display())))?;
        let manifest = decode_manifest(&raw)?;
        if !HistoryLog::exists(dir) {
            return Err(SessionError::Config(
                "this session directory predates the history subsystem (no history.meta)".into(),
            ));
        }
        let history = HistoryLog::open(dir)?;
        let seq = at.unwrap_or_else(|| history.last_seq());
        let records = history.records_upto(seq)?;
        let (graph, reduced) = replay_records(dir, manifest.cfg, &records)?;
        Ok(Replayed {
            seq,
            graph,
            reduced,
        })
    }
}

/// Outcome of [`Session::replay_dir`]: the seq the replay reached, the
/// reconstructed graph at that seq, and the exact reduction over it.
#[derive(Debug)]
pub struct Replayed {
    /// The history seq the replay stopped at.
    pub seq: u64,
    /// The graph as it stood at that seq.
    pub graph: Graph,
    /// The exact scores at that seq (bitwise equal to the live session's).
    pub reduced: Reduced,
}

/// Replay decoded history records over the sealed genesis snapshot and
/// reduce exactly (see [`Session::replay_to`] for the bitwise argument).
fn replay_records(
    dir: &Path,
    cfg: UpdateConfig,
    records: &[ebc_store::HistoryRecord],
) -> Result<(Graph, Reduced), SessionError> {
    let genesis = read_sealed(&dir.join(GENESIS_NAME), GENESIS_MAGIC)?;
    let graph = Graph::from_snapshot_bytes(&genesis)?;
    let mut state = BetweennessState::new_with(graph, cfg);
    for rec in records {
        let update = decode_update(&rec.payload)?;
        state.apply(update)?;
    }
    let reduced = EbcEngine::reduce_exact(&mut state)?;
    Ok((state.graph().clone(), reduced))
}
