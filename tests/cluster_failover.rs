//! The failover crash matrix: a shard leader is killed at every protocol
//! window — mid-apply (WAL entry local, follower behind), mid-WAL-ship
//! (follower caught up, leader dies before acking the coordinator), and
//! mid-promote (the lease expires while the old leader is still alive, so
//! its last fan-out lands *during* the promotion) — across p ∈ {1, 3, 8}
//! shards. In every cell the promoted follower's `reduce_exact` must be
//! **bitwise** equal to a serial [`BetweennessState`] replay of the same
//! update stream: replication and failover are invisible to the scores.

mod common;

use common::to_bits;
use ebc_cluster::wire::ReplyBody;
use ebc_cluster::{
    CoordEvent, CoordinatorConfig, KillSpec, KillWindow, NodeConfig, NodeId, Role, SimBuilder,
    SimCluster, COORD,
};
use std::time::Duration;
use streaming_bc::core::BetweennessState;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::Update;

fn base_graph() -> Graph {
    holme_kim(18, 2, 0.3, 7)
}

/// The matrix's update stream: additions, a removal, and two updates that
/// grow the graph (the second touches the adopted vertex again, so the
/// adoption must actually have stuck on every shard).
fn update_stream(g: &Graph) -> Vec<Update> {
    let mut s = common::non_edge_adds(g, 3);
    let (u, v) = g.edges().next().expect("graph has an edge").0.endpoints();
    s.push(Update::remove(u, v));
    let n = g.n() as u32;
    s.push(Update::add(n, 2));
    s.push(Update::add(n, 9));
    s
}

/// The serial oracle: one plain in-memory state, no shards, no wire, no
/// failures — the bit pattern every cluster cell must reproduce.
fn oracle_bits(g: &Graph, stream: &[Update]) -> (Vec<u64>, Vec<u64>) {
    let mut st = BetweennessState::new(g);
    for &u in stream {
        st.apply(u).unwrap();
    }
    let s = st.exact_scores().unwrap();
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

fn cluster_bits(sim: &mut SimCluster, ctx: &str) -> (Vec<u64>, Vec<u64>) {
    let s = sim
        .coord
        .reduce_exact()
        .unwrap_or_else(|e| panic!("{ctx}: reduce_exact failed: {e}"));
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

/// Tight leases so a failover costs milliseconds, not the defaults' whole
/// seconds — and so the node-side replication lease is shorter than the
/// coordinator's RPC lease (a dying ship must not outlive a fence probe).
fn fast_cfgs() -> (NodeConfig, CoordinatorConfig) {
    let node = NodeConfig {
        rep_attempts: 3,
        rep_timeout: Duration::from_millis(40),
        ..NodeConfig::default()
    };
    let coord = CoordinatorConfig {
        rpc_timeout: Duration::from_millis(80),
        rpc_attempts: 4,
        ..CoordinatorConfig::default()
    };
    (node, coord)
}

/// `fence_stale` needs the zombie idle enough to answer; retry through its
/// (bounded) ship backoff instead of sleeping a worst case up front.
fn fence_until_demoted(sim: &mut SimCluster, want: usize, ctx: &str) {
    let mut demoted = 0;
    for _ in 0..100 {
        demoted += sim.coord.fence_stale();
        if demoted >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("{ctx}: fenced only {demoted}/{want} stale leaders");
}

fn status_of(sim: &mut SimCluster, node: NodeId, ctx: &str) -> (Role, u64, u64) {
    match sim.coord.node_status(node) {
        Ok(ReplyBody::Status {
            role,
            version,
            wal_len,
            ..
        }) => (role, version, wal_len),
        other => panic!("{ctx}: status of {node:?} came back {other:?}"),
    }
}

/// Mid-apply and mid-ship: the node-side crash injection fires inside the
/// leader's own protocol handler, deterministically at one WAL index.
#[test]
fn kill_window_matrix_is_bitwise() {
    let g = base_graph();
    let stream = update_stream(&g);
    let want = oracle_bits(&g, &stream);

    for p in [1usize, 3, 8] {
        for window in [KillWindow::MidApply, KillWindow::MidShip] {
            // kill a middle shard so both lower and higher shards keep
            // running across the failover
            let shard = p / 2;
            let ctx = format!("p={p} window={window:?} shard={shard}");
            let (node_cfg, coord_cfg) = fast_cfgs();
            let mut sim = SimBuilder::new(p)
                .node_cfg(node_cfg)
                .coord_cfg(coord_cfg)
                .kill(
                    NodeId(1 + shard as u32),
                    KillSpec {
                        window,
                        at_index: 3,
                    },
                )
                .launch(&g)
                .unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));
            for &u in &stream {
                sim.coord
                    .apply(u)
                    .unwrap_or_else(|e| panic!("{ctx}: apply failed: {e}"));
            }
            assert_eq!(sim.coord.failovers(), 1, "{ctx}: expected one failover");
            assert_eq!(
                sim.coord.groups()[shard].leader,
                sim.follower_id(shard),
                "{ctx}: leadership did not move to the follower"
            );

            // the promoted follower holds the full WAL: Init + every update
            let leader = sim.coord.groups()[shard].leader;
            let (role, version, wal_len) = status_of(&mut sim, leader, &ctx);
            assert_eq!(role, Role::Leader, "{ctx}");
            assert_eq!(version, sim.coord.version(), "{ctx}");
            assert_eq!(wal_len, 1 + stream.len() as u64, "{ctx}: WAL gap or dup");

            let got = cluster_bits(&mut sim, &ctx);
            assert_eq!(want, got, "{ctx}: failover changed the bits");
            sim.shutdown();
        }
    }
}

/// Mid-promote: the old leader is *alive* but its coordinator link is
/// held, so the lease expires and promotion starts; the `Promoting` event
/// releases the held apply, which then lands on the zombie — whose fan-out
/// races the promotion itself. Whichever way the race resolves (replicate
/// before the promote, or ignored after it), indexes and the map version
/// must make the outcome bitwise identical and exactly-once.
#[test]
fn midpromote_zombie_fanout_is_fenced_and_bitwise() {
    let g = base_graph();
    let stream = update_stream(&g);
    let want = oracle_bits(&g, &stream);

    for p in [1usize, 3, 8] {
        let ctx = format!("p={p} window=MidPromote shard=0");
        let (node_cfg, coord_cfg) = fast_cfgs();
        let mut sim = SimBuilder::new(p)
            .node_cfg(node_cfg)
            .coord_cfg(coord_cfg)
            .launch(&g)
            .unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));
        let victim = sim.leader_id(0);

        // the moment promotion of shard 0 begins, hand the zombie its
        // held-back apply traffic
        let net = sim.net.clone();
        sim.coord.set_event_hook(Box::new(move |ev| {
            if let CoordEvent::Promoting { shard: 0, .. } = ev {
                net.release(COORD, victim);
            }
        }));

        for (i, &u) in stream.iter().enumerate() {
            if i == 2 {
                sim.net.hold(COORD, victim);
            }
            sim.coord
                .apply(u)
                .unwrap_or_else(|e| panic!("{ctx}: apply {i} failed: {e}"));
        }
        assert_eq!(sim.coord.failovers(), 1, "{ctx}: expected one failover");

        // the coordinator fences the zombie off the map version it missed
        fence_until_demoted(&mut sim, 1, &ctx);
        let (role, version, _) = status_of(&mut sim, victim, &ctx);
        assert_eq!(role, Role::Idle, "{ctx}: zombie not demoted");
        assert_eq!(
            version,
            sim.coord.version(),
            "{ctx}: zombie missed the fence"
        );

        // exactly-once: the promoted leader's WAL has every update exactly
        // once, however the zombie's late fan-out raced the promotion
        let leader = sim.coord.groups()[0].leader;
        assert_eq!(leader, sim.follower_id(0), "{ctx}");
        let (role, _, wal_len) = status_of(&mut sim, leader, &ctx);
        assert_eq!(role, Role::Leader, "{ctx}");
        assert_eq!(wal_len, 1 + stream.len() as u64, "{ctx}: WAL gap or dup");

        let got = cluster_bits(&mut sim, &ctx);
        assert_eq!(want, got, "{ctx}: mid-promote race changed the bits");
        sim.shutdown();
    }
}
