//! Network partitions and seeded chaos: the coordinator must fence a
//! leader it lost behind a partition (the map version it missed makes its
//! lease unrecoverable — no split brain, no double-apply after the heal),
//! and the whole protocol must converge **bitwise** under deterministic
//! seed-driven drop/duplicate/delay injection. Every chaos assertion
//! prints its seed so a failure replays exactly.

mod common;

use common::to_bits;
use ebc_cluster::wire::ReplyBody;
use ebc_cluster::{
    CoordinatorConfig, FaultSpec, NodeConfig, NodeId, Role, SimBuilder, SimCluster, COORD,
};
use std::time::Duration;
use streaming_bc::core::BetweennessState;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::Update;

fn base_graph() -> Graph {
    holme_kim(16, 2, 0.3, 5)
}

fn update_stream(g: &Graph) -> Vec<Update> {
    let mut s = common::non_edge_adds(g, 5);
    let (u, v) = g.edges().next().expect("graph has an edge").0.endpoints();
    s.push(Update::remove(u, v));
    let n = g.n() as u32;
    s.push(Update::add(n, 3));
    s.push(Update::add(n, 7));
    s
}

fn oracle_bits(g: &Graph, stream: &[Update]) -> (Vec<u64>, Vec<u64>) {
    let mut st = BetweennessState::new(g);
    for &u in stream {
        st.apply(u).unwrap();
    }
    let s = st.exact_scores().unwrap();
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

fn cluster_bits(sim: &mut SimCluster, ctx: &str) -> (Vec<u64>, Vec<u64>) {
    let s = sim
        .coord
        .reduce_exact()
        .unwrap_or_else(|e| panic!("{ctx}: reduce_exact failed: {e}"));
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

fn fast_cfgs() -> (NodeConfig, CoordinatorConfig) {
    let node = NodeConfig {
        rep_attempts: 3,
        rep_timeout: Duration::from_millis(40),
        ..NodeConfig::default()
    };
    let coord = CoordinatorConfig {
        rpc_timeout: Duration::from_millis(80),
        rpc_attempts: 4,
        ..CoordinatorConfig::default()
    };
    (node, coord)
}

fn node_status(sim: &mut SimCluster, node: NodeId, ctx: &str) -> (Role, u64, u64, u64) {
    match sim.coord.node_status(node) {
        Ok(ReplyBody::Status {
            role,
            version,
            wal_len,
            fenced,
            ..
        }) => (role, version, wal_len, fenced),
        other => panic!("{ctx}: status of {node:?} came back {other:?}"),
    }
}

/// A partition isolates shard 0's leader from the coordinator (the nodes
/// still see each other). Its lease expires, the follower is promoted at a
/// bumped map version, and traffic continues. After the heal the deposed
/// leader is explicitly fenced: it drops to `Idle`, its next-version
/// demotion registers in its fence counter, the promoted leader's WAL
/// holds every update exactly once, and the scores are bitwise equal to a
/// serial replay — the partition never happened, as far as the bits care.
#[test]
fn healed_partition_is_fenced_without_double_apply() {
    let ctx = "partition/heal p=2 shard=0";
    let g = base_graph();
    let stream = update_stream(&g);
    let want = oracle_bits(&g, &stream);

    let (node_cfg, coord_cfg) = fast_cfgs();
    let mut sim = SimBuilder::new(2)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg)
        .launch(&g)
        .unwrap();
    let victim = sim.leader_id(0);
    let version_before = sim.coord.version();

    // two updates while the cluster is whole
    for &u in &stream[..2] {
        sim.coord.apply(u).unwrap();
    }

    // the coordinator loses shard 0's leader; the third apply runs the
    // lease out and promotes the follower
    sim.net.partition(COORD, victim);
    for &u in &stream[2..] {
        sim.coord
            .apply(u)
            .unwrap_or_else(|e| panic!("{ctx}: apply across the partition failed: {e}"));
    }
    assert_eq!(sim.coord.failovers(), 1, "{ctx}: expected one failover");
    assert!(
        sim.coord.version() > version_before,
        "{ctx}: promotion must bump the map version"
    );
    assert_eq!(sim.coord.groups()[0].leader, sim.follower_id(0), "{ctx}");

    // heal: the deposed leader reappears, still believing it leads shard 0
    // at the stale version — fencing is what retires it
    sim.net.heal(COORD, victim);
    let (role, _, stale_wal, fenced_before) = node_status(&mut sim, victim, ctx);
    assert_eq!(role, Role::Leader, "{ctx}: zombie lost its delusion early");
    assert_eq!(
        stale_wal, 3,
        "{ctx}: the zombie's WAL must end where the partition began"
    );

    assert_eq!(sim.coord.fence_stale(), 1, "{ctx}: fence after heal");
    let (role, version, stale_wal_after, fenced_after) = node_status(&mut sim, victim, ctx);
    assert_eq!(role, Role::Idle, "{ctx}: fenced leader must drop its shard");
    assert_eq!(
        version,
        sim.coord.version(),
        "{ctx}: fence carries the new version"
    );
    assert_eq!(
        stale_wal_after, 0,
        "{ctx}: a demoted zombie must hold no shard state"
    );
    assert!(
        fenced_after >= fenced_before,
        "{ctx}: fence counter went backwards"
    );

    // no double-apply: the promoted leader holds Init + each update once
    let leader = sim.coord.groups()[0].leader;
    let (role, _, wal_len, _) = node_status(&mut sim, leader, ctx);
    assert_eq!(role, Role::Leader, "{ctx}");
    assert_eq!(
        wal_len,
        1 + stream.len() as u64,
        "{ctx}: WAL gap or double-apply after the heal"
    );

    let got = cluster_bits(&mut sim, ctx);
    assert_eq!(want, got, "{ctx}: partition changed the bits");
    sim.shutdown();
}

/// Deterministic chaos: every link drops, duplicates, and delays frames
/// from one logged seed while the full update stream (removal and graph
/// growth included) goes through. Dedup by sequence number and WAL index
/// must absorb every retry and replay — the reduce under chaos, the calm
/// re-read, and the serial oracle all agree bitwise. A failed run prints
/// the seed; `SBC_CHAOS_SEED` replays it exactly.
#[test]
fn chaos_soak_converges_bitwise() {
    // Override to replay a failure: SBC_CHAOS_SEED=<decimal> cargo test ...
    let seed: u64 = std::env::var("SBC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE11);
    println!("chaos soak: seed={seed} (set SBC_CHAOS_SEED to replay)");
    let ctx = format!("chaos seed={seed} p=3");

    let g = base_graph();
    let stream = update_stream(&g);
    let want = oracle_bits(&g, &stream);

    // the node-side replication lease (3 × 40 ms) must stay well under the
    // coordinator's per-shard lease (8 × 60 ms): a leader stuck re-shipping
    // into a dropped link has to give up (degraded) before the coordinator
    // declares the whole shard dead
    let node_cfg = NodeConfig {
        rep_attempts: 3,
        rep_timeout: Duration::from_millis(40),
        ..NodeConfig::default()
    };
    let coord_cfg = CoordinatorConfig {
        rpc_timeout: Duration::from_millis(60),
        rpc_attempts: 8,
        ..CoordinatorConfig::default()
    };
    let mut sim = SimBuilder::new(3)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg)
        .launch(&g)
        .unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));

    // faults go live only after the bootstrap (which runs single-attempt)
    sim.net.set_faults(Some(FaultSpec {
        seed,
        drop_pm: 80,
        dup_pm: 60,
        delay_pm: 80,
    }));

    for (i, &u) in stream.iter().enumerate() {
        sim.coord
            .apply(u)
            .unwrap_or_else(|e| panic!("{ctx}: apply {i} failed under chaos: {e}"));
    }

    // chaos stays on for the reduce too: retries must still converge...
    let noisy = cluster_bits(&mut sim, &ctx);
    assert_eq!(want, noisy, "{ctx}: chaos changed the bits");

    // ...and a calm re-read agrees with the noisy one
    sim.net.set_faults(None);
    let calm = cluster_bits(&mut sim, &ctx);
    assert_eq!(
        noisy, calm,
        "{ctx}: calm re-read disagrees with the noisy read"
    );
    sim.shutdown();
}
