//! The cluster over real sockets and real processes: `sbc node` children
//! speak the DESIGN.md §12 protocol through `TcpTransport`, a leader dies
//! by SIGKILL (no goodbye, no flush — the real failure mode), and the
//! coordinator's failover must keep the reduce bitwise equal to a serial
//! replay. The `sbc coord` batch driver gets the same treatment
//! end-to-end: its printed scores round-trip `f64` exactly.

mod common;

use common::{apply_line, bits_field, to_bits, write_edgelist, Client, SbcChild};
use ebc_cluster::{Coordinator, CoordinatorConfig, NodeId, ShardSpec, TcpTransport, COORD};
use std::time::Duration;
use streaming_bc::core::BetweennessState;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::io::load_graph;
use streaming_bc::graph::Graph;
use streaming_bc::Update;

fn spawn_node(id: u32) -> SbcChild {
    SbcChild::spawn_cmd("node", &["--id", &id.to_string()], &[])
}

fn update_stream(g: &Graph) -> Vec<Update> {
    let mut s = common::non_edge_adds(g, 3);
    let (u, v) = g.edges().next().expect("graph has an edge").0.endpoints();
    s.push(Update::remove(u, v));
    let n = g.n() as u32;
    s.push(Update::add(n, 1));
    s.push(Update::add(n, 6));
    s
}

fn oracle_bits(g: &Graph, stream: &[Update]) -> (Vec<u64>, Vec<u64>) {
    let mut st = BetweennessState::new(g);
    for &u in stream {
        st.apply(u).unwrap();
    }
    let s = st.exact_scores().unwrap();
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

/// Drain a surviving node child and demand the clean protocol exit.
fn assert_drained(child: SbcChild, who: &str) {
    let (status, rest) = child.wait();
    assert!(status.success(), "{who} exited dirty");
    assert!(rest.contains("drained"), "{who} did not drain: {rest:?}");
}

/// Four real `sbc node` processes, an in-process coordinator dialing them
/// over TCP — and shard 0's leader SIGKILLed mid-stream. The socket just
/// goes dead; the lease expires; the follower process is promoted; the
/// scores never notice.
#[test]
fn sigkilled_tcp_leader_fails_over_bitwise() {
    let g = holme_kim(14, 2, 0.3, 3);
    let stream = update_stream(&g);
    let want = oracle_bits(&g, &stream);

    let nodes: Vec<SbcChild> = (1..=4).map(spawn_node).collect();
    let specs: Vec<ShardSpec> = (0..2)
        .map(|k| ShardSpec {
            leader: NodeId(1 + k),
            leader_hint: Some(nodes[k as usize].addr.to_string()),
            follower: Some(NodeId(3 + k)),
            follower_hint: Some(nodes[2 + k as usize].addr.to_string()),
        })
        .collect();

    let (tx, mb) = ebc_cluster::transport::mailbox();
    let transport = TcpTransport::new(COORD, tx);
    let cfg = CoordinatorConfig {
        rpc_timeout: Duration::from_millis(200),
        rpc_attempts: 5,
        ..CoordinatorConfig::default()
    };
    let mut coord = Coordinator::new(transport, mb, cfg);
    coord.bootstrap(&g, specs).expect("tcp bootstrap");

    for &u in &stream[..2] {
        coord.apply(u).expect("apply before the kill");
    }

    // SIGKILL shard 0's leader: no FIN handshake courtesy, just RST
    let mut nodes = nodes.into_iter();
    let mut victim = nodes.next().unwrap();
    victim.child.kill().expect("SIGKILL the leader");
    for &u in &stream[2..] {
        coord.apply(u).expect("apply across the failover");
    }
    assert_eq!(coord.failovers(), 1, "expected exactly one failover");
    assert_eq!(coord.groups()[0].leader, NodeId(3));

    let s = coord.reduce_exact().expect("reduce over tcp");
    assert_eq!(
        want,
        (to_bits(&s.vbc), to_bits(&s.ebc)),
        "SIGKILL failover changed the bits"
    );

    coord.shutdown();
    let (status, _) = victim.wait();
    assert!(!status.success(), "a SIGKILLed leader cannot exit cleanly");
    for (i, node) in nodes.enumerate() {
        assert_drained(node, &format!("node {}", i + 2));
    }
}

/// `sbc coord` end-to-end: real nodes, the batch CLI, and the printed
/// per-vertex/per-edge scores parsed back — `{}` on `f64` is
/// shortest-round-trip, so the comparison is still bitwise.
#[test]
fn coord_cli_drives_real_nodes_bitwise() {
    let dir = common::tmpdir("cluster_tcp_cli");
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("graph.edges");
    write_edgelist(&holme_kim(14, 2, 0.3, 3), &edges);
    let g = load_graph(&edges).unwrap();
    let stream = update_stream(&g);
    let (want_vbc, _) = oracle_bits(&g, &stream);

    let updates = dir.join("stream.updates");
    let mut text = String::new();
    for u in &stream {
        use std::fmt::Write as _;
        let sign = match u.op {
            streaming_bc::graph::EdgeOp::Add => '+',
            streaming_bc::graph::EdgeOp::Remove => '-',
        };
        writeln!(text, "{sign} {} {}", u.u, u.v).unwrap();
    }
    std::fs::write(&updates, text).unwrap();

    let nodes: Vec<SbcChild> = (1..=4).map(spawn_node).collect();
    let leaders = format!("1@{},2@{}", nodes[0].addr, nodes[1].addr);
    let followers = format!("3@{},4@{}", nodes[2].addr, nodes[3].addr);

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_sbc"))
        .args([
            "coord",
            "--edgelist",
            edges.to_str().unwrap(),
            "--updates",
            updates.to_str().unwrap(),
            "--leaders",
            &leaders,
            "--followers",
            &followers,
        ])
        .output()
        .expect("run sbc coord");
    assert!(
        out.status.success(),
        "sbc coord failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();

    // parse the `v <id> <score>` lines back into bits
    let mut got_vbc = vec![0u64; want_vbc.len()];
    let mut seen = 0;
    for line in stdout.lines() {
        let mut it = line.split_whitespace();
        if it.next() != Some("v") {
            continue;
        }
        let v: usize = it.next().unwrap().parse().unwrap();
        let x: f64 = it.next().unwrap().parse().unwrap();
        got_vbc[v] = x.to_bits();
        seen += 1;
    }
    assert_eq!(seen, want_vbc.len(), "coord printed a wrong-sized vector");
    assert_eq!(want_vbc, got_vbc, "sbc coord scores not bitwise");
    assert!(
        stdout.contains("failovers=0"),
        "calm run reported failovers: {stdout:?}"
    );

    for (i, node) in nodes.into_iter().enumerate() {
        assert_drained(node, &format!("node {}", i + 1));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `sbc coord --serve`: four real node processes behind the JSON-line
/// frontend of DESIGN.md §11. A client speaking only the serve protocol
/// applies the stream and reduces — bitwise equal to the serial oracle —
/// without knowing a replicated fleet answers, and the `shutdown`
/// command drains the frontend, the coordinator, and every node.
#[test]
fn json_frontend_drives_cluster_bitwise() {
    let dir = common::tmpdir("cluster_tcp_serve");
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("graph.edges");
    write_edgelist(&holme_kim(14, 2, 0.3, 3), &edges);
    let g = load_graph(&edges).unwrap();
    let stream = update_stream(&g);
    let (want_vbc, want_ebc) = oracle_bits(&g, &stream);

    let nodes: Vec<SbcChild> = (1..=4).map(spawn_node).collect();
    let leaders = format!("1@{},2@{}", nodes[0].addr, nodes[1].addr);
    let followers = format!("3@{},4@{}", nodes[2].addr, nodes[3].addr);
    let coord = SbcChild::spawn_cmd(
        "coord",
        &[
            "--edgelist",
            edges.to_str().unwrap(),
            "--leaders",
            &leaders,
            "--followers",
            &followers,
            "--serve",
        ],
        &[],
    );

    let mut client = Client::connect(coord.addr);
    let stats = client.request_ok(r#"{"cmd":"stats"}"#);
    assert_eq!(
        stats
            .get("backend")
            .and_then(ebc_serve::json::Value::as_str),
        Some("cluster"),
        "the frontend must advertise the cluster engine"
    );
    assert_eq!(common::u64_field(&stats, "workers"), 2);

    for (i, chunk) in stream.chunks(2).enumerate() {
        client.request_ok(&apply_line(1 + i as u64, None, chunk));
    }
    let reduced = client.request_ok(r#"{"id":"r","cmd":"reduce_exact"}"#);
    assert_eq!(
        (want_vbc, want_ebc),
        (bits_field(&reduced, "vbc"), bits_field(&reduced, "ebc")),
        "frontend reduce over the cluster is not bitwise"
    );

    client.request_ok(r#"{"id":"bye","cmd":"shutdown"}"#);
    drop(client);
    let (status, rest) = coord.wait();
    assert!(status.success(), "coord --serve exited dirty");
    assert!(rest.contains("drained"), "coord did not drain: {rest:?}");
    for (i, node) in nodes.into_iter().enumerate() {
        assert_drained(node, &format!("node {}", i + 1));
    }
    std::fs::remove_dir_all(&dir).ok();
}
