//! Shared line-protocol test client for the serve suites: a blocking
//! newline-delimited JSON client over TCP, plus response accessors.

#![allow(dead_code)] // each integration test uses a different subset

use ebc_serve::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One protocol connection. Requests and responses are 1:1 and ordered on
/// an unsubscribed connection; [`Client::recv`] reads exactly one line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect with a generous read timeout so a server bug fails the
    /// test instead of hanging the suite.
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve frontend");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Send one request line.
    pub fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request line");
    }

    /// Send to a possibly-dead peer (post-crash probes): a pipe error just
    /// means the close already reached us, which the following
    /// [`Client::recv_line`] will report as `None`.
    pub fn send_lossy(&mut self, line: &str) {
        let _ = writeln!(self.writer, "{line}");
    }

    /// Read one response/event line; `None` when the server closed (or
    /// reset — an aborting process does not FIN politely) the connection.
    pub fn recv_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                None
            }
            Err(e) => panic!("recv failed: {e}"),
        }
    }

    /// Read one line and parse it.
    pub fn recv(&mut self) -> Value {
        let line = self.recv_line().expect("server closed the connection");
        json::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    /// One full round trip.
    pub fn request(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }

    /// Round trip that must come back `"ok":true`.
    pub fn request_ok(&mut self, line: &str) -> Value {
        let resp = self.request(line);
        assert!(is_ok(&resp), "request {line:?} failed: {}", resp.to_json());
        resp
    }
}

/// The canonical `apply` request line the serve suites send: `id`, the
/// optional `backend` pin, and the encoded update batch.
pub fn apply_line(id: u64, backend: Option<&str>, batch: &[streaming_bc::Update]) -> String {
    let mut fields = std::collections::BTreeMap::new();
    fields.insert("id".to_string(), Value::from(id));
    fields.insert("cmd".to_string(), Value::from("apply"));
    if let Some(b) = backend {
        fields.insert("backend".to_string(), Value::from(b));
    }
    fields.insert(
        "updates".to_string(),
        Value::Arr(batch.iter().map(ebc_serve::encode_update).collect()),
    );
    Value::Obj(fields).to_json()
}

/// `"ok":true`?
pub fn is_ok(v: &Value) -> bool {
    v.get("ok").and_then(Value::as_bool) == Some(true)
}

/// The `error.kind` string of a failed response.
pub fn error_kind(v: &Value) -> &str {
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no error.kind in {}", v.to_json()))
}

/// A required non-negative integer field.
pub fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("no u64 field {key:?} in {}", v.to_json()))
}

/// A float-array field as raw bits (the bitwise-equality currency of the
/// serve suites).
pub fn bits_field(v: &Value, key: &str) -> Vec<u64> {
    v.get(key)
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("no array field {key:?} in {}", v.to_json()))
        .iter()
        .map(|x| x.as_f64().expect("score is a number").to_bits())
        .collect()
}

/// Slice of `f64` to bits, for comparing library-side scores to the wire.
pub fn to_bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Fresh scratch directory under the system temp dir.
pub fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("sbc_serve_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The first `count` vertex pairs that are not edges of `g`, as additions
/// — always a valid update stream against `g`.
pub fn non_edge_adds(g: &streaming_bc::graph::Graph, count: usize) -> Vec<streaming_bc::Update> {
    let n = g.n() as u32;
    let mut out = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                out.push(streaming_bc::Update::add(u, v));
                if out.len() == count {
                    return out;
                }
            }
        }
    }
    panic!("graph too dense for {count} non-edges");
}

/// Write a whitespace edgelist the `sbc` binary (and the oracle, through
/// the same loader) can read back.
pub fn write_edgelist(g: &streaming_bc::graph::Graph, path: &std::path::Path) {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (key, _) in g.edges() {
        let (u, v) = key.endpoints();
        writeln!(text, "{u} {v}").unwrap();
    }
    std::fs::write(path, text).expect("write edgelist");
}

/// A spawned `sbc` child process (any line-protocol subcommand: `serve`,
/// `node`, `coord`), already past its `ready` line.
pub struct SbcChild {
    pub child: std::process::Child,
    pub addr: SocketAddr,
    pub stdout: BufReader<std::process::ChildStdout>,
}

/// The serve suites' historical name for [`SbcChild`].
pub type ServeChild = SbcChild;

impl SbcChild {
    /// Launch `sbc serve <args>` on an ephemeral TCP port and wait for
    /// the `ready` handshake, capturing the bound address.
    pub fn spawn(args: &[&str], envs: &[(&str, &str)]) -> SbcChild {
        SbcChild::spawn_cmd("serve", args, envs)
    }

    /// Launch `sbc <subcommand> <args>` on an ephemeral TCP port and wait
    /// for the `ready` handshake, capturing the bound address. Every
    /// network-facing subcommand prints the same `listening tcp=<addr>` /
    /// `ready` lines, so one spawner serves all suites.
    pub fn spawn_cmd(subcommand: &str, args: &[&str], envs: &[(&str, &str)]) -> SbcChild {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_sbc"));
        cmd.arg(subcommand)
            .args(args)
            .args(["--tcp", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn sbc child");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut addr = None;
        loop {
            let mut line = String::new();
            if stdout.read_line(&mut line).expect("read child stdout") == 0 {
                panic!("sbc {subcommand} exited before becoming ready");
            }
            if let Some(rest) = line.trim().strip_prefix("listening tcp=") {
                addr = Some(rest.parse().expect("parse bound address"));
            }
            if line.trim() == "ready" {
                break;
            }
        }
        SbcChild {
            child,
            addr: addr.expect("child reported no tcp address"),
            stdout,
        }
    }

    /// Deliver a signal (e.g. `TERM`) through the shell's `kill`.
    pub fn signal(&self, sig: &str) {
        let status = std::process::Command::new("sh")
            .arg("-c")
            .arg(format!("kill -{sig} {}", self.child.id()))
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -{sig} failed");
    }

    /// Wait for exit, collecting the rest of stdout.
    pub fn wait(mut self) -> (std::process::ExitStatus, String) {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drain child stdout");
        let status = self.child.wait().expect("wait for child");
        (status, rest)
    }
}
