//! Coordinator durability: kill the control plane, restart it from its
//! `--dir`, and keep commanding the running node fleet — with the map
//! version, failover count, node registry, and `next_index` cursors all
//! surviving the restart, and the final `reduce_exact` bitwise equal to a
//! serial replay of the full update stream.

mod common;

use common::{tmpdir, to_bits};
use ebc_cluster::journal::{CoordJournal, JournalEntry, JournalRecord};
use ebc_cluster::{
    CoordinatorConfig, KillSpec, KillWindow, NodeConfig, NodeId, SimBuilder, SimCluster,
};
use std::time::Duration;
use streaming_bc::core::BetweennessState;
use streaming_bc::graph::Graph;
use streaming_bc::Update;

fn ring(n: u32) -> Graph {
    let mut g = Graph::with_vertices(n as usize);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n).unwrap();
    }
    g
}

/// Additions, a removal, and two growth updates (the second touches the
/// adopted vertex again, so the adoption must survive the restart too).
fn update_stream(n: u32) -> Vec<Update> {
    vec![
        Update::add(0, 4),
        Update::add(2, 7),
        Update::remove(0, 1),
        Update::add(n, 3),
        Update::add(n, 8),
        Update::add(1, 6),
    ]
}

fn oracle_bits(g: &Graph, stream: &[Update]) -> (Vec<u64>, Vec<u64>) {
    let mut st = BetweennessState::new(g);
    for &u in stream {
        st.apply(u).unwrap();
    }
    let s = st.exact_scores().unwrap();
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

fn cluster_bits(sim: &mut SimCluster, ctx: &str) -> (Vec<u64>, Vec<u64>) {
    let s = sim
        .coord
        .reduce_exact()
        .unwrap_or_else(|e| panic!("{ctx}: reduce_exact failed: {e}"));
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

fn fast_cfgs() -> (NodeConfig, CoordinatorConfig) {
    let node = NodeConfig {
        rep_attempts: 3,
        rep_timeout: Duration::from_millis(40),
        ..NodeConfig::default()
    };
    let coord = CoordinatorConfig {
        rpc_timeout: Duration::from_millis(80),
        rpc_attempts: 4,
        ..CoordinatorConfig::default()
    };
    (node, coord)
}

/// The plain restart: apply half the stream, crash the coordinator, resume
/// it from `--dir`, apply the rest — bitwise vs the serial oracle, across
/// shard counts.
#[test]
fn coordinator_restart_is_bitwise() {
    let g = ring(12);
    let stream = update_stream(12);
    let want = oracle_bits(&g, &stream);

    for p in [1usize, 3, 8] {
        let ctx = format!("p={p}");
        let dir = tmpdir(&format!("coord_resume_p{p}"));
        let (node_cfg, coord_cfg) = fast_cfgs();
        let mut sim = SimBuilder::new(p)
            .node_cfg(node_cfg)
            .coord_cfg(coord_cfg.clone())
            .persist_to(&dir)
            .launch(&g)
            .unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));
        let (first, rest) = stream.split_at(stream.len() / 2);
        for &u in first {
            sim.coord.apply(u).unwrap();
        }
        let version_before = sim.coord.version();
        assert!(CoordJournal::exists(&dir), "{ctx}: no snapshot in --dir");

        let mut sim = sim
            .crash_coord()
            .resume_coord(coord_cfg, &dir)
            .unwrap_or_else(|e| panic!("{ctx}: resume failed: {e}"));
        assert!(
            sim.coord.version() >= version_before,
            "{ctx}: map version went backwards across the restart"
        );
        assert_eq!(sim.coord.num_shards(), p, "{ctx}");
        for &u in rest {
            sim.coord.apply(u).unwrap();
        }
        assert_eq!(want, cluster_bits(&mut sim, &ctx), "{ctx}: bits changed");
        sim.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A failover before the crash: the bumped map version, the failover
/// count, and the rewritten group must all come back from the snapshot —
/// a resumed coordinator at a stale version would be fenced by its own
/// fleet.
#[test]
fn resume_preserves_failover_and_fencing_version() {
    let g = ring(10);
    let stream = update_stream(10);
    let want = oracle_bits(&g, &stream);
    let dir = tmpdir("coord_resume_failover");
    let (node_cfg, coord_cfg) = fast_cfgs();

    let mut sim = SimBuilder::new(2)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg.clone())
        .persist_to(&dir)
        .kill(
            NodeId(2),
            KillSpec {
                window: KillWindow::MidApply,
                at_index: 2,
            },
        )
        .launch(&g)
        .unwrap();
    let (first, rest) = stream.split_at(3);
    for &u in first {
        sim.coord.apply(u).unwrap();
    }
    assert_eq!(sim.coord.failovers(), 1, "leader kill did not fail over");
    let version_before = sim.coord.version();
    let leader_before = sim.coord.groups()[1].leader;

    let mut sim = sim.crash_coord().resume_coord(coord_cfg, &dir).unwrap();
    assert_eq!(sim.coord.failovers(), 1, "failover count lost");
    assert_eq!(sim.coord.version(), version_before, "fencing version lost");
    assert_eq!(
        sim.coord.groups()[1].leader,
        leader_before,
        "promoted leader lost"
    );
    for &u in rest {
        sim.coord.apply(u).unwrap();
    }
    assert_eq!(want, cluster_bits(&mut sim, "failover+resume"));
    sim.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The write-ahead window: an update journaled but never dispatched (the
/// coordinator died between the journal append and the fan-out). Resume
/// must re-drive it from the journal — the fleet sees it exactly once and
/// the oracle stream includes it.
#[test]
fn resume_redrives_journaled_undispatched_update() {
    let g = ring(12);
    let stream = update_stream(12);
    let p = 3usize;
    let dir = tmpdir("coord_resume_inflight");
    let (node_cfg, coord_cfg) = fast_cfgs();

    let mut sim = SimBuilder::new(p)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg.clone())
        .persist_to(&dir)
        .launch(&g)
        .unwrap();
    let (applied, tail) = stream.split_at(stream.len() - 1);
    for &u in applied {
        sim.coord.apply(u).unwrap();
    }
    let headless = sim.crash_coord();

    // forge the crash window: journal the final update exactly as the
    // dead coordinator would have (write-ahead, dispatch indices = one
    // Init entry + every applied update) without dispatching it anywhere
    {
        let (mut journal, ..) = CoordJournal::open(&dir).expect("reopen journal");
        journal
            .append(&JournalRecord {
                entry: JournalEntry {
                    update: tail[0],
                    adopter: None,
                },
                indices: vec![1 + applied.len() as u64; p],
            })
            .expect("forge write-ahead record");
    }

    let mut sim = headless.resume_coord(coord_cfg, &dir).unwrap();
    // no further applies: resume alone must have completed the update
    let want = oracle_bits(&g, &stream);
    assert_eq!(
        want,
        cluster_bits(&mut sim, "re-driven tail"),
        "journaled-but-undispatched update was not re-driven"
    );
    sim.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming twice in a row (crash loop) stays exactly-once: the second
/// resume re-drives the same newest record, which every node answers from
/// its dedup window.
#[test]
fn double_resume_is_exactly_once() {
    let g = ring(10);
    let stream = update_stream(10);
    let want = oracle_bits(&g, &stream);
    let dir = tmpdir("coord_resume_twice");
    let (node_cfg, coord_cfg) = fast_cfgs();

    let mut sim = SimBuilder::new(3)
        .node_cfg(node_cfg)
        .coord_cfg(coord_cfg.clone())
        .persist_to(&dir)
        .launch(&g)
        .unwrap();
    for &u in &stream {
        sim.coord.apply(u).unwrap();
    }
    let mut sim = sim
        .crash_coord()
        .resume_coord(coord_cfg.clone(), &dir)
        .unwrap();
    assert_eq!(want, cluster_bits(&mut sim, "first resume"));
    let mut sim = sim.crash_coord().resume_coord(coord_cfg, &dir).unwrap();
    assert_eq!(want, cluster_bits(&mut sim, "second resume"));
    sim.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
