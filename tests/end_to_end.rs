//! Cross-crate integration: generators → framework → oracle, through the
//! facade crate's public API only.

use streaming_bc::core::verify::assert_matches_scratch;
use streaming_bc::core::{BetweennessState, Update};
use streaming_bc::gen::models::{barabasi_albert, erdos_renyi_gnm, holme_kim, watts_strogatz};
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::graph::Graph;

fn exercise(g: &Graph, seed: u64, label: &str) {
    let mut st = BetweennessState::new(g);
    for (u, v) in addition_stream(g, 12, seed) {
        st.apply(Update::add(u, v)).unwrap();
    }
    for (u, v) in removal_stream(g, 12, seed + 1) {
        if st.graph().has_edge(u, v) {
            st.apply(Update::remove(u, v)).unwrap();
        }
    }
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, label);
}

#[test]
fn erdos_renyi_stream() {
    exercise(&erdos_renyi_gnm(60, 150, 3), 10, "ER");
}

#[test]
fn barabasi_albert_stream() {
    exercise(&barabasi_albert(80, 3, 4), 11, "BA");
}

#[test]
fn holme_kim_stream() {
    exercise(&holme_kim(70, 4, 0.6, 5), 12, "HK");
}

#[test]
fn watts_strogatz_stream() {
    exercise(&watts_strogatz(60, 3, 0.2, 6), 13, "WS");
}

#[test]
fn sparse_disconnected_graph_stream() {
    // many components, lots of merges/disconnections along the way
    let g = erdos_renyi_gnm(50, 30, 7);
    exercise(&g, 14, "sparse");
}

#[test]
fn quickstart_snippet_behaviour() {
    // keep the README snippet honest
    let mut g = Graph::with_vertices(4);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
        g.add_edge(u, v).unwrap();
    }
    let mut state = BetweennessState::new(&g);
    state.apply(Update::add(1, 3)).unwrap();
    state.apply(Update::remove(0, 2)).unwrap();
    assert_eq!(state.vertex_centrality().len(), 4);
    assert_matches_scratch(state.graph(), state.scores(), 1e-9, "quickstart");
}

#[test]
fn normalized_scores_match_classic_convention() {
    // P3: classic (unordered) betweenness of the middle vertex is 1.
    let mut g = Graph::with_vertices(3);
    g.add_edge(0, 1).unwrap();
    g.add_edge(1, 2).unwrap();
    let st = BetweennessState::new(&g);
    let norm = st.scores().vbc_normalized();
    assert!((norm[1] - 1.0).abs() < 1e-12);
}
