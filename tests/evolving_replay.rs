//! Cross-crate integration: timestamped replay of a growing graph through
//! the online simulator, with score verification at the end.

use std::time::Duration;
use streaming_bc::core::verify::assert_matches_scratch;
use streaming_bc::core::{BetweennessState, Update};
use streaming_bc::engine::online::simulate_modeled;
use streaming_bc::gen::models::holme_kim_with_order;
use streaming_bc::gen::streams::replay_growth;
use streaming_bc::gn::girvan_newman_incremental;

#[test]
fn replayed_tail_reaches_full_graph_scores() {
    let (full, order) = holme_kim_with_order(70, 3, 0.5, 17);
    let (boot, tail) = replay_growth(&order, full.n(), 25, 0.1, 0.5, 18);
    let mut st = BetweennessState::new(&boot);
    for ev in tail.events() {
        st.apply(Update {
            op: ev.op,
            u: ev.u,
            v: ev.v,
        })
        .unwrap();
    }
    assert_eq!(st.graph().sorted_edges(), full.sorted_edges());
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, "replayed tail");
}

#[test]
fn online_simulation_preserves_correctness() {
    let (full, order) = holme_kim_with_order(50, 3, 0.4, 19);
    let (boot, tail) = replay_growth(&order, full.n(), 15, 0.05, 0.8, 20);
    let mut st = BetweennessState::new(&boot);
    let report = simulate_modeled(&mut st, &tail, 4, Duration::from_micros(10)).unwrap();
    assert_eq!(report.events.len(), 15);
    assert_matches_scratch(st.graph(), st.scores(), 1e-6, "after online replay");
    // queueing discipline: completions are monotone
    for w in report.events.windows(2) {
        assert!(w[1].completion >= w[0].completion);
    }
}

#[test]
fn community_detection_over_grown_graph() {
    let (full, _) = holme_kim_with_order(60, 3, 0.6, 21);
    let dg = girvan_newman_incremental(&full, 20);
    assert_eq!(dg.steps.len(), 20);
    assert!(dg.steps.last().unwrap().components >= dg.steps[0].components);
}
