//! Cross-crate integration: the pooled parallel engine must agree with the
//! single-machine state — **bitwise**, not within epsilon — via the
//! partition-invariant exact reduce, for every store backend × worker count
//! × stream shape combination. The fast (partial-sum) reduce is additionally
//! pinned to epsilon agreement, since its summation order legitimately
//! depends on the worker count.

use streaming_bc::core::{BetweennessState, Scores, Update, UpdateConfig};
use streaming_bc::engine::{ClusterEngine, EngineError};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::graph::Graph;
use streaming_bc::store::{CodecKind, DiskBdStore};

const WORKER_COUNTS: [usize; 4] = [1, 3, 5, 8];

fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (
        s.vbc.iter().map(|x| x.to_bits()).collect(),
        s.ebc.iter().map(|x| x.to_bits()).collect(),
    )
}

/// The streams of the oracle matrix: additions, removals, disconnecting
/// removals, and a mixed stream that grows the vertex set mid-flight.
fn scenarios() -> Vec<(&'static str, Graph, Vec<Update>)> {
    let mut out = Vec::new();

    let g = holme_kim(60, 3, 0.4, 9);
    let adds: Vec<Update> = addition_stream(&g, 8, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    out.push(("additions", g.clone(), adds.clone()));

    let removes: Vec<Update> = removal_stream(&g, 8, 2)
        .into_iter()
        .map(|(u, v)| Update::remove(u, v))
        .collect();
    out.push(("removals", g.clone(), removes.clone()));

    // two dense communities joined by one bridge; cutting it disconnects
    let mut barbell = Graph::with_vertices(14);
    for base in [0u32, 7] {
        for i in 0..7u32 {
            for j in (i + 1)..7 {
                barbell.add_edge(base + i, base + j).unwrap();
            }
        }
    }
    barbell.add_edge(3, 10).unwrap();
    out.push((
        "disconnect",
        barbell,
        vec![
            Update::remove(3, 10), // severs the bridge
            Update::remove(0, 1),
            Update::add(2, 12), // reconnects
            Update::remove(2, 12),
            Update::add(5, 9),
        ],
    ));

    // interleave additions, removals, and three vertex arrivals
    let mut mixed = Vec::new();
    for (i, (&a, &r)) in adds.iter().zip(&removes).enumerate() {
        mixed.push(a);
        if i < 3 {
            let newcomer = 60 + i as u32;
            mixed.push(Update::add(i as u32 * 7, newcomer));
        }
        mixed.push(r);
    }
    out.push(("growth-mix", g, mixed));

    out
}

/// Replay on the single-machine state; return the incremental scores and the
/// deterministic exact scores (the bitwise oracle).
fn single_oracle(g: &Graph, updates: &[Update]) -> (BetweennessState, Scores) {
    let mut single = BetweennessState::new(g);
    for &u in updates {
        single.apply(u).unwrap();
    }
    let exact = single.exact_scores().unwrap();
    (single, exact)
}

fn check_cluster<S: streaming_bc::core::BdStore + 'static>(
    mut cluster: ClusterEngine<S>,
    updates: &[Update],
    single: &BetweennessState,
    oracle_exact: &Scores,
    ctx: &str,
) {
    let reports = cluster.apply_stream(updates).unwrap();
    assert_eq!(reports.len(), updates.len(), "{ctx}: lost reports");
    // bitwise: the exact reduce must equal the single-machine derivation
    let exact = cluster.reduce_exact().unwrap().scores;
    assert_eq!(
        bits(&exact),
        bits(oracle_exact),
        "{ctx}: exact reduce diverged bitwise"
    );
    // epsilon: the fast partial-sum reduce tracks the incremental scores
    let fast = cluster.reduce().unwrap().scores;
    assert!(
        fast.max_vbc_diff(single.scores()) < 1e-9,
        "{ctx}: fast reduce VBC drifted"
    );
    assert!(
        fast.max_ebc_diff(single.scores(), single.graph()) < 1e-9,
        "{ctx}: fast reduce EBC drifted"
    );
}

#[test]
fn memory_matrix_is_bit_identical_to_single_state() {
    for (name, g, updates) in scenarios() {
        let (single, oracle_exact) = single_oracle(&g, &updates);
        for p in WORKER_COUNTS {
            let cluster = ClusterEngine::new(&g, p).unwrap();
            let ctx = format!("memory × p={p} × {name}");
            check_cluster(cluster, &updates, &single, &oracle_exact, &ctx);
        }
    }
}

#[test]
fn disk_matrix_is_bit_identical_to_single_state() {
    let dir = std::env::temp_dir().join(format!("sbc_matrix_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g, updates) in scenarios() {
        let (single, oracle_exact) = single_oracle(&g, &updates);
        for p in WORKER_COUNTS {
            let dir = dir.clone();
            let cluster =
                ClusterEngine::new_with(&g, p, UpdateConfig::default(), move |worker, n| {
                    // one private file per worker — one disk per machine (§5.2)
                    let path = dir.join(format!("{name}_{p}_w{worker}.bd"));
                    let _ = std::fs::remove_file(&path);
                    DiskBdStore::create(path, n, CodecKind::Wide).map_err(EngineError::from)
                })
                .unwrap();
            let ctx = format!("disk × p={p} × {name}");
            check_cluster(cluster, &updates, &single, &oracle_exact, &ctx);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Replay `updates` with a rebalance wedged in after `k` of them: force a
/// skewed ownership layout via explicit handoffs, let `rebalance(1)`
/// restore the invariant, then finish the stream. The exact reduce must
/// stay bit-identical to the no-handoff oracle — ownership movement can
/// never change scores.
fn check_rebalanced_cluster<S: streaming_bc::core::BdStore + 'static>(
    mut cluster: ClusterEngine<S>,
    updates: &[Update],
    k: usize,
    oracle_exact: &Scores,
    ctx: &str,
) {
    let p = cluster.num_workers();
    cluster.apply_stream(&updates[..k]).unwrap();
    if p > 1 {
        // skew: the first three sources worker 0 owns pile onto the last
        // worker, then the deterministic plan pulls things level again
        let victims: Vec<u32> = cluster
            .shard_map()
            .sources_of(0)
            .iter()
            .copied()
            .take(3)
            .collect();
        for s in victims {
            cluster.handoff(s, p - 1).unwrap();
        }
        let report = cluster.rebalance(1).unwrap();
        assert!(
            cluster.shard_map().skew() <= 1,
            "{ctx}: skew {} after rebalance ({} moves)",
            cluster.shard_map().skew(),
            report.moves.len()
        );
    } else {
        // p = 1: nothing to move, but the call must be a safe no-op
        assert!(cluster.rebalance(1).unwrap().moves.is_empty(), "{ctx}");
    }
    cluster.apply_stream(&updates[k..]).unwrap();
    let exact = cluster.reduce_exact().unwrap().scores;
    assert_eq!(
        bits(&exact),
        bits(oracle_exact),
        "{ctx}: rebalance-mid-stream diverged bitwise from the no-handoff run"
    );
}

#[test]
fn rebalance_mid_stream_matrix_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("sbc_rebalance_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g, updates) in scenarios() {
        if name == "additions" || name == "removals" {
            continue; // the mixed and disconnect streams cover both op kinds
        }
        let (_, oracle_exact) = single_oracle(&g, &updates);
        for p in [1usize, 3, 8] {
            for k in [2usize, updates.len() / 2] {
                let mem = ClusterEngine::new(&g, p).unwrap();
                let ctx = format!("mem × p={p} × {name} × handoff-after-{k}");
                check_rebalanced_cluster(mem, &updates, k, &oracle_exact, &ctx);

                let dir = dir.clone();
                let disk =
                    ClusterEngine::new_with(&g, p, UpdateConfig::default(), move |worker, n| {
                        let path = dir.join(format!("rb_{name}_{p}_{k}_w{worker}.bd"));
                        let _ = std::fs::remove_file(&path);
                        DiskBdStore::create(path, n, CodecKind::Wide).map_err(EngineError::from)
                    })
                    .unwrap();
                let ctx = format!("disk × p={p} × {name} × handoff-after-{k}");
                check_rebalanced_cluster(disk, &updates, k, &oracle_exact, &ctx);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_counts_do_not_change_results() {
    // the historical epsilon test, upgraded: across worker counts the exact
    // reduce must now agree bit for bit
    let g = holme_kim(50, 3, 0.5, 11);
    let mut updates: Vec<Update> = addition_stream(&g, 6, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    updates.extend(
        removal_stream(&g, 6, 2)
            .into_iter()
            .map(|(u, v)| Update::remove(u, v)),
    );
    let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
    for p in [1usize, 2, 7, 16] {
        let mut cluster = ClusterEngine::new(&g, p).unwrap();
        cluster.apply_stream(&updates).unwrap();
        let exact = cluster.reduce_exact().unwrap().scores;
        match &reference {
            None => reference = Some(bits(&exact)),
            Some(r) => assert_eq!(r, &bits(&exact), "p={p} diverged bitwise"),
        }
    }
}
