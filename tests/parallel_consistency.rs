//! Cross-crate integration: the parallel engine (with both memory and disk
//! worker stores) must agree exactly with the single-machine state.

use streaming_bc::core::{BetweennessState, Update, UpdateConfig};
use streaming_bc::engine::{ClusterEngine, EngineError};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::store::{CodecKind, DiskBdStore};

fn updates_for(g: &streaming_bc::graph::Graph) -> Vec<Update> {
    let mut ups: Vec<Update> = addition_stream(g, 6, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    ups.extend(
        removal_stream(g, 6, 2)
            .into_iter()
            .map(|(u, v)| Update::remove(u, v)),
    );
    ups
}

#[test]
fn memory_cluster_matches_single_state() {
    let g = holme_kim(60, 3, 0.4, 9);
    let mut cluster = ClusterEngine::bootstrap(&g, 5).unwrap();
    let mut single = BetweennessState::init(&g);
    for u in updates_for(&g) {
        cluster.apply(u).unwrap();
        single.apply(u).unwrap();
    }
    let (scores, _) = cluster.reduce();
    assert!(scores.max_vbc_diff(single.scores()) < 1e-9);
    assert!(scores.max_ebc_diff(single.scores(), single.graph()) < 1e-9);
}

#[test]
fn disk_cluster_matches_single_state() {
    let g = holme_kim(40, 3, 0.4, 10);
    let dir = std::env::temp_dir().join("sbc_it_disk_cluster");
    std::fs::create_dir_all(&dir).unwrap();
    let dir2 = dir.clone();
    let mut cluster =
        ClusterEngine::bootstrap_with(&g, 3, UpdateConfig::default(), move |worker, n| {
            // one private file per worker — one disk per machine, as in §5.2
            let path = dir2.join(format!("worker{worker}.bd"));
            DiskBdStore::create(path, n, CodecKind::Wide).map_err(EngineError::from)
        })
        .unwrap();
    let mut single = BetweennessState::init(&g);
    for u in updates_for(&g) {
        cluster.apply(u).unwrap();
        single.apply(u).unwrap();
    }
    let (scores, _) = cluster.reduce();
    assert!(scores.max_vbc_diff(single.scores()) < 1e-9);
    assert!(scores.max_ebc_diff(single.scores(), single.graph()) < 1e-9);
}

#[test]
fn worker_counts_do_not_change_results() {
    let g = holme_kim(50, 3, 0.5, 11);
    let updates = updates_for(&g);
    let mut reference: Option<streaming_bc::core::Scores> = None;
    for p in [1usize, 2, 7, 16] {
        let mut cluster = ClusterEngine::bootstrap(&g, p).unwrap();
        for &u in &updates {
            cluster.apply(u).unwrap();
        }
        let (scores, _) = cluster.reduce();
        match &reference {
            None => reference = Some(scores),
            Some(r) => {
                assert!(r.max_vbc_diff(&scores) < 1e-9, "p={p} diverged");
            }
        }
    }
}
