//! Property-test oracle for the CSR hot path: the cluster engine's workers
//! traverse pinned [`ebc_graph::CsrView`] epochs, while the single-machine
//! [`BetweennessState`] still walks the legacy `Vec<Vec<Half>>` adjacency.
//! Over random add / remove / grow / **disconnect** histories, the
//! partition-invariant exact reduction must be **bitwise identical**
//! between the two representations — on the in-memory and the on-disk
//! `BD[·]` backend, for every worker count in `{1, 3, 8}`.
//!
//! This is the acceptance oracle for the CSR refactor: any divergence in
//! neighbor order (the dependency accumulation pulls successors in
//! adjacency order), in epoch publication, or in the overlapped reduce
//! would break bit-equality here.
//!
//! The vendored proptest stub derives each test's RNG seed from the test
//! name, so CI runs are reproducible by construction.

use proptest::collection;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use streaming_bc::core::state::{BetweennessState, Update};
use streaming_bc::core::{EbcEngine, Scores};
use streaming_bc::engine::{ClusterEngine, EngineError};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::GraphView;
use streaming_bc::store::{CodecKind, DiskBdStore};

/// One step of a random evolution history.
#[derive(Debug, Clone, Copy)]
enum HistOp {
    /// Toggle the edge between two picked vertices: add when absent,
    /// remove when present.
    Toggle { u_pick: usize, v_pick: usize },
    /// Attach a brand-new vertex to a picked existing one (growth +
    /// adoption path; stretches the CSR with a fresh zero-capacity
    /// segment).
    Grow { u_pick: usize },
    /// Remove *every* edge of a picked vertex, isolating it — the
    /// disconnection case: distances to the island become unreachable and
    /// the CSR segment empties in place.
    Disconnect { v_pick: usize },
}

fn hist_op() -> impl Strategy<Value = HistOp> {
    prop_oneof![
        6 => (0usize..1024, 0usize..1024).prop_map(|(u, v)| HistOp::Toggle {
            u_pick: u,
            v_pick: v,
        }),
        1 => (0usize..1024).prop_map(|u| HistOp::Grow { u_pick: u }),
        1 => (0usize..1024).prop_map(|v| HistOp::Disconnect { v_pick: v }),
    ]
}

fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (
        s.vbc.iter().map(|x| x.to_bits()).collect(),
        s.ebc.iter().map(|x| x.to_bits()).collect(),
    )
}

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Worker counts the oracle sweeps — single worker (CSR with no real
/// fan-out), the odd middle, and more workers than hot vertices.
const WORKERS: [usize; 3] = [1, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The headline acceptance property: for any random history, every
    /// CSR-backed embodiment reduces to the exact same bits as the legacy
    /// adjacency-list state.
    #[test]
    fn csr_reduce_exact_matches_legacy_bitwise(
        seed in 0u64..1_000,
        ops in collection::vec(hist_op(), 1..24),
    ) {
        let g = holme_kim(18, 2, 0.35, seed);
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "sbc_proptest_csr_{}_{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // the legacy-path oracle: Vec<Vec<Half>> adjacency, one machine
        let mut legacy = BetweennessState::new(&g);

        // the CSR-path contenders: p-worker clusters on both backends
        let mut contenders: Vec<(String, Box<dyn EbcEngine>)> = Vec::new();
        for p in WORKERS {
            contenders.push((
                format!("mem p={p}"),
                Box::new(ClusterEngine::new(&g, p).unwrap()),
            ));
            let store_dir = dir.clone();
            let cluster = ClusterEngine::new_with(
                &g,
                p,
                streaming_bc::core::incremental::UpdateConfig::default(),
                move |worker, n| {
                    let path = store_dir.join(format!("p{p}_w{worker}.bd"));
                    DiskBdStore::create(path, n, CodecKind::Wide).map_err(EngineError::from)
                },
            )
            .unwrap();
            contenders.push((format!("disk p={p}"), Box::new(cluster)));
        }

        let lockstep = |update: Update,
                            legacy: &mut BetweennessState,
                            contenders: &mut Vec<(String, Box<dyn EbcEngine>)>| {
            legacy.apply(update).unwrap();
            for (ctx, engine) in contenders.iter_mut() {
                engine.apply(update).unwrap_or_else(|e| {
                    panic!("{ctx} seed={seed}: apply({update:?}) failed: {e}")
                });
            }
        };

        for op in &ops {
            match *op {
                HistOp::Toggle { u_pick, v_pick } => {
                    let n = legacy.graph().n();
                    let u = (u_pick % n) as u32;
                    let v = (v_pick % n) as u32;
                    if u == v {
                        continue;
                    }
                    let update = if legacy.graph().has_edge(u, v) {
                        Update::remove(u, v)
                    } else {
                        Update::add(u, v)
                    };
                    lockstep(update, &mut legacy, &mut contenders);
                }
                HistOp::Grow { u_pick } => {
                    let n = legacy.graph().n();
                    let u = (u_pick % n) as u32;
                    lockstep(Update::add(u, n as u32), &mut legacy, &mut contenders);
                }
                HistOp::Disconnect { v_pick } => {
                    let n = legacy.graph().n();
                    let v = (v_pick % n) as u32;
                    let partners: Vec<u32> = GraphView::neighbors(legacy.graph(), v)
                        .iter()
                        .map(|h| h.to)
                        .collect();
                    for w in partners {
                        lockstep(Update::remove(v, w), &mut legacy, &mut contenders);
                    }
                    // islands must agree too, not just the final state
                    let oracle = legacy.exact_scores().unwrap();
                    for (ctx, engine) in contenders.iter_mut() {
                        let exact = engine.reduce_exact().unwrap().scores;
                        prop_assert_eq!(
                            bits(&exact),
                            bits(&oracle),
                            "{} seed={}: diverged after disconnecting {}",
                            ctx, seed, v
                        );
                    }
                }
            }
        }

        let oracle = legacy.exact_scores().unwrap();
        for (ctx, engine) in contenders.iter_mut() {
            let exact = engine.reduce_exact().unwrap().scores;
            prop_assert_eq!(
                bits(&exact),
                bits(&oracle),
                "{} seed={}: final scores diverged",
                ctx, seed
            );
        }
        drop(contenders); // release the disk stores before cleanup
        std::fs::remove_dir_all(&dir).ok();
    }
}
