//! Property-test oracle for the incremental rank index: across random
//! add / remove / grow / disconnect histories, on every embodiment
//! (in-memory, on-disk, sharded, for worker counts in {1, 3, 8}), the
//! session's incrementally maintained [`RankIndex`] must stay **bitwise
//! identical** to a from-scratch sort of the engine's maintained scores —
//! same ids in the same order from `top_k` (the `ranking::top_k` oracle,
//! ties toward smaller id), and the same score bits for every vertex.
//!
//! This is the acceptance oracle for the delta feed: any missed dirty
//! mark in the kernel, any drift between a sparse drain and the engine's
//! scores, or any tie-break divergence in the treap key order fails here.
//!
//! The vendored proptest stub derives each test's RNG seed from the test
//! name, so CI runs are reproducible by construction.

use proptest::collection;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use streaming_bc::core::ranking;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::{Backend, Session, Update};

/// One step of a random evolution history (same shape as the CSR oracle).
#[derive(Debug, Clone, Copy)]
enum HistOp {
    /// Toggle the edge between two picked vertices.
    Toggle { u_pick: usize, v_pick: usize },
    /// Attach a brand-new vertex to a picked existing one — the index
    /// must grow to cover the fresh id.
    Grow { u_pick: usize },
    /// Remove every edge of a picked vertex — scores collapse toward the
    /// all-ties-at-zero regime where the id tie-break does all the work.
    Disconnect { v_pick: usize },
}

fn hist_op() -> impl Strategy<Value = HistOp> {
    prop_oneof![
        6 => (0usize..1024, 0usize..1024).prop_map(|(u, v)| HistOp::Toggle {
            u_pick: u,
            v_pick: v,
        }),
        1 => (0usize..1024).prop_map(|u| HistOp::Grow { u_pick: u }),
        1 => (0usize..1024).prop_map(|v| HistOp::Disconnect { v_pick: v }),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Worker counts the oracle sweeps.
const WORKERS: [usize; 3] = [1, 3, 8];

/// The index agrees with the sort-based oracle on one session, bit for
/// bit: every ranked read and the full score vector.
fn assert_index_matches_oracle(ctx: &str, seed: u64, session: &mut Session) {
    let vbc = session.scores().unwrap().scores.vbc;
    let n = vbc.len();

    // the index holds exactly the engine's scores, bitwise
    let indexed = session.rank_index().unwrap().to_scores();
    prop_assert_eq!(
        indexed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        vbc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "{} seed={}: index scores diverged from engine scores",
        ctx,
        seed
    );

    // top_k agrees with the re-sort oracle at every cut, including the
    // tie-heavy boundaries
    for k in [0, 1, 3, n / 2, n, n + 7] {
        prop_assert_eq!(
            session.top_k(k).unwrap(),
            ranking::top_k(&vbc, k),
            "{} seed={}: top_{} diverged from the sort oracle",
            ctx,
            seed,
            k
        );
    }

    // rank_of is the 1-based position in the full ranking; percentile is
    // its complement mass
    let full = ranking::top_k(&vbc, n);
    for (pos, &v) in full.iter().enumerate() {
        prop_assert_eq!(
            session.rank_of(v).unwrap(),
            Some(pos + 1),
            "{} seed={}: rank_of({}) diverged",
            ctx,
            seed,
            v
        );
        let want = (n - pos) as f64 / n as f64;
        prop_assert_eq!(
            session.percentile(v).unwrap(),
            Some(want),
            "{} seed={}: percentile({}) diverged",
            ctx,
            seed,
            v
        );
    }
    prop_assert_eq!(session.rank_of(n as u32 + 9).unwrap(), None);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The headline acceptance property: for any random history, on every
    /// embodiment, ranked reads off the incremental index are bitwise
    /// identical to re-sorting the maintained scores from scratch.
    #[test]
    fn rank_index_matches_sort_oracle_bitwise(
        seed in 0u64..1_000,
        ops in collection::vec(hist_op(), 1..16),
    ) {
        let g = holme_kim(16, 2, 0.35, seed);
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "sbc_proptest_rank_{}_{case}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // a plain graph mirror drives the history (decides toggles,
        // tracks n) without touching any engine
        let mut mirror: Graph = g.clone();

        let mut sessions: Vec<(String, Session)> = vec![(
            "mem p=1".into(),
            Session::builder().backend(Backend::Memory).build(&g).unwrap(),
        )];
        for p in WORKERS {
            sessions.push((
                format!("shard p={p}"),
                Session::builder()
                    .backend(Backend::Sharded(dir.join(format!("s{p}"))))
                    .workers(p)
                    .build(&g)
                    .unwrap(),
            ));
        }
        sessions.push((
            "disk p=1".into(),
            Session::builder()
                .backend(Backend::Disk(dir.join("disk")))
                .build(&g)
                .unwrap(),
        ));

        let step = |update: Update,
                        mirror: &mut Graph,
                        sessions: &mut Vec<(String, Session)>| {
            match update.op {
                streaming_bc::graph::EdgeOp::Add => {
                    while (mirror.n() as u32) <= update.u.max(update.v) {
                        mirror.add_vertex();
                    }
                    mirror.add_edge(update.u, update.v).unwrap();
                }
                streaming_bc::graph::EdgeOp::Remove => {
                    mirror.remove_edge(update.u, update.v).unwrap();
                }
            }
            for (ctx, session) in sessions.iter_mut() {
                session.apply(update).unwrap_or_else(|e| {
                    panic!("{ctx} seed={seed}: apply({update:?}) failed: {e}")
                });
                // check after *every* update: a stale index hides behind
                // later updates if we only compare final states
                assert_index_matches_oracle(ctx, seed, session);
            }
        };

        for op in &ops {
            match *op {
                HistOp::Toggle { u_pick, v_pick } => {
                    let n = mirror.n();
                    let u = (u_pick % n) as u32;
                    let v = (v_pick % n) as u32;
                    if u == v {
                        continue;
                    }
                    let update = if mirror.has_edge(u, v) {
                        Update::remove(u, v)
                    } else {
                        Update::add(u, v)
                    };
                    step(update, &mut mirror, &mut sessions);
                }
                HistOp::Grow { u_pick } => {
                    let n = mirror.n();
                    let u = (u_pick % n) as u32;
                    step(Update::add(u, n as u32), &mut mirror, &mut sessions);
                }
                HistOp::Disconnect { v_pick } => {
                    let n = mirror.n();
                    let v = (v_pick % n) as u32;
                    let partners: Vec<u32> = (0..n as u32)
                        .filter(|&w| w != v && mirror.has_edge(v, w))
                        .collect();
                    for w in partners {
                        step(Update::remove(v, w), &mut mirror, &mut sessions);
                    }
                }
            }
        }

        drop(sessions); // release the disk stores before cleanup
        std::fs::remove_dir_all(&dir).ok();
    }
}
