//! Concurrency matrix for the network frontend: N reader connections
//! hammering `scores`/`top_k` while M writer connections stream disjoint
//! update batches — over memory-, disk- and sharded-backed sessions.
//!
//! The load-bearing assertion: the server's `seq_first`/`seq_last` apply
//! acknowledgments expose the writer task's one global serial order, and
//! replaying exactly that order through a plain [`Session`] must reproduce
//! the served `reduce_exact` scores **bitwise** (floats cross the wire via
//! shortest-round-trip JSON, which is lossless — pinned by the codec
//! proptest).

mod common;

use common::{apply_line, bits_field, is_ok, tmpdir, to_bits, u64_field, Client};
use ebc_serve::json::Value;
use ebc_serve::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use streaming_bc::core::ranking;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::serve::ServedSession;
use streaming_bc::{Backend, Session, Update};

const WRITERS: usize = 3;
const READERS: usize = 3;
const PAIRS_PER_WRITER: usize = 6;
const BATCH: usize = 3;

fn base_graph() -> Graph {
    holme_kim(24, 2, 0.3, 11)
}

/// Disjoint per-writer pools of non-edges: every pair is touched by
/// exactly one writer, so each writer's program order is the only order
/// constraint an interleaving has to respect — any serialization the
/// server picks is valid.
fn writer_pools(g: &Graph) -> Vec<Vec<(u32, u32)>> {
    let n = g.n() as u32;
    let mut pools = vec![Vec::new(); WRITERS];
    let mut w = 0;
    'fill: for u in 0..n {
        for v in (u + 1)..n {
            if g.has_edge(u, v) {
                continue;
            }
            pools[w].push((u, v));
            w = (w + 1) % WRITERS;
            if pools.iter().all(|p| p.len() >= PAIRS_PER_WRITER) {
                break 'fill;
            }
        }
    }
    pools
}

/// One writer's program: add every pool pair, remove half, re-add a
/// quarter — additions and removals both in flight while readers query.
fn writer_ops(pool: &[(u32, u32)]) -> Vec<Update> {
    let mut ops: Vec<Update> = pool.iter().map(|&(u, v)| Update::add(u, v)).collect();
    ops.extend(
        pool.iter()
            .take(pool.len() / 2)
            .map(|&(u, v)| Update::remove(u, v)),
    );
    ops.extend(
        pool.iter()
            .take(pool.len() / 4)
            .map(|&(u, v)| Update::add(u, v)),
    );
    ops
}

/// The full matrix cell: spawn the server, run writers + readers, then
/// replay the observed serial order through a plain session and demand
/// bitwise equality; for durable backends, also reopen after the drain.
fn run_cell(backend: Backend, workers: usize, dir: Option<&std::path::Path>, ctx: &str) {
    let g = base_graph();
    let session = Session::builder()
        .backend(backend)
        .workers(workers)
        .build(&g)
        .unwrap();
    // a shallow queue so writer backpressure actually engages under test
    let cfg = ServerConfig {
        queue_depth: 2,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(ServedSession::new(session), cfg).unwrap();
    let addr = handle.tcp_addr().unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let n = g.n();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut last_seq = 0u64;
                let mut rounds = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let scores = client.request_ok(&format!(r#"{{"id":{r},"cmd":"scores"}}"#));
                    let seq = u64_field(&scores, "seq");
                    assert!(seq >= last_seq, "snapshot seq went backwards");
                    last_seq = seq;
                    assert_eq!(
                        bits_field(&scores, "vbc").len(),
                        n,
                        "scores answered with a wrong-sized vector"
                    );
                    let top = client.request_ok(&format!(r#"{{"id":{r},"cmd":"top_k","k":5}}"#));
                    assert!(u64_field(&top, "seq") >= seq);
                    rounds += 1;
                }
                assert!(rounds > 0, "reader never completed a round");
            })
        })
        .collect();

    let writers: Vec<_> = writer_pools(&g)
        .into_iter()
        .map(|pool| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut log: Vec<(u64, Vec<Update>)> = Vec::new();
                for (i, batch) in writer_ops(&pool).chunks(BATCH).enumerate() {
                    let resp = client.request_ok(&apply_line(i as u64, Some("exact"), batch));
                    let first = u64_field(&resp, "seq_first");
                    let last = u64_field(&resp, "seq_last");
                    assert_eq!(
                        last - first + 1,
                        batch.len() as u64,
                        "ack seq range does not cover the batch"
                    );
                    assert_eq!(u64_field(&resp, "applied") as usize, batch.len());
                    // read-your-writes: the next snapshot on this
                    // connection must already include the acked batch
                    let seen = client.request_ok(r#"{"cmd":"scores"}"#);
                    assert!(
                        u64_field(&seen, "seq") >= last,
                        "acked batch missing from the next snapshot"
                    );
                    log.push((first, batch.to_vec()));
                }
                log
            })
        })
        .collect();

    let mut batches: Vec<(u64, Vec<Update>)> = Vec::new();
    for w in writers {
        batches.extend(w.join().expect("writer thread"));
    }
    done.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().expect("reader thread");
    }

    // the acks must tile the sequence space exactly: one global order,
    // every update in it, nothing applied twice
    batches.sort_by_key(|&(first, _)| first);
    let mut next = 1u64;
    let mut serialized: Vec<Update> = Vec::new();
    for (first, batch) in batches {
        assert_eq!(first, next, "{ctx}: gap or overlap in the global order");
        next += batch.len() as u64;
        serialized.extend(batch);
    }

    let mut client = Client::connect(addr);
    let stats = client.request_ok(r#"{"cmd":"stats"}"#);
    assert_eq!(u64_field(&stats, "seq"), next - 1, "{ctx}: updates lost");
    let reduced = client.request_ok(r#"{"id":"final","cmd":"reduce_exact"}"#);
    let wire_vbc = bits_field(&reduced, "vbc");
    let wire_ebc = bits_field(&reduced, "ebc");

    // the serial oracle: same updates, same order, no server in sight
    let mut oracle = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    oracle.apply_stream(&serialized).unwrap();
    let oracle_scores = oracle.reduce_exact().unwrap().scores;
    assert_eq!(
        wire_vbc,
        to_bits(&oracle_scores.vbc),
        "{ctx}: served VBC not bitwise equal to the serial replay"
    );
    assert_eq!(
        wire_ebc,
        to_bits(&oracle_scores.ebc),
        "{ctx}: served EBC not bitwise equal to the serial replay"
    );

    drop(client);
    handle.shutdown();
    handle.join();

    if let Some(dir) = dir {
        // the drain checkpointed: the directory reopens bootstrap-free to
        // exactly the served state
        let mut reopened = Session::open(dir).unwrap();
        assert_eq!(
            reopened.brandes_runs().unwrap_or(0),
            0,
            "{ctx}: reopen re-bootstrapped"
        );
        let recovered = reopened.reduce_exact().unwrap().scores;
        assert_eq!(
            to_bits(&recovered.vbc),
            wire_vbc,
            "{ctx}: reopened scores diverged from what was served"
        );
    }
}

#[test]
fn memory_backend_serves_consistently_under_contention() {
    run_cell(Backend::Memory, 1, None, "memory");
}

#[test]
fn disk_backend_serves_consistently_under_contention() {
    let dir = tmpdir("concurrent_disk");
    run_cell(Backend::Disk(dir.clone()), 1, Some(&dir), "disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_backend_serves_consistently_under_contention() {
    let dir = tmpdir("concurrent_sharded");
    run_cell(Backend::Sharded(dir.clone()), 3, Some(&dir), "sharded p=3");
    std::fs::remove_dir_all(&dir).ok();
}

/// The subscriber's pushed `entered`/`left` deltas are exactly what a
/// local [`RankTracker`] computes over the same update stream: one
/// connection subscribes and applies batches, a mirror session feeds a
/// tracker after every batch, and every event (diffed off the snapshot's
/// rank index on the server side) must agree element for element.
#[test]
fn subscriber_deltas_match_a_local_rank_tracker() {
    const K: usize = 4;
    let ids = |line: &Value, key: &str| -> Vec<u32> {
        line.get(key)
            .and_then(Value::as_arr)
            .unwrap_or_else(|| panic!("event missing {key}: {}", line.to_json()))
            .iter()
            .map(|v| v.as_u64().unwrap() as u32)
            .collect()
    };
    let top_ids = |line: &Value| -> Vec<u32> {
        line.get("top")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|e| e.as_arr().unwrap()[0].as_u64().unwrap() as u32)
            .collect()
    };

    let g = base_graph();
    let session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    let handle = Server::spawn(ServedSession::new(session), ServerConfig::default()).unwrap();
    let addr = handle.tcp_addr().unwrap();

    // the mirror: same graph, same stream, no server in sight
    let mut mirror = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    let mut tracker = ranking::RankTracker::new(K);

    let mut client = Client::connect(addr);
    let ack = client.request(&format!(
        r#"{{"id":"s","cmd":"subscribe","what":"top_k","k":{K}}}"#
    ));
    assert!(is_ok(&ack), "subscribe failed: {}", ack.to_json());

    // the seed event is the first observation on both sides
    let seed = client.recv();
    assert_eq!(seed.get("event").and_then(Value::as_str), Some("top_k"));
    let (entered, left) = tracker.observe(&mirror.scores().unwrap().scores.vbc);
    assert_eq!(ids(&seed, "entered"), entered, "seed entered diverged");
    assert_eq!(ids(&seed, "left"), left, "seed left diverged");
    assert_eq!(top_ids(&seed), tracker.current(), "seed top diverged");

    // one batch at a time on the subscribing connection itself: the
    // writer task queues the batch's event (if any) before the ack, so
    // every line up to the ack belongs to this batch
    for (i, batch) in writer_ops(&writer_pools(&g)[0]).chunks(BATCH).enumerate() {
        client.send(&apply_line(i as u64, Some("exact"), batch));
        let mut events = Vec::new();
        let ack = loop {
            let line = client.recv();
            if line.get("event").is_some() {
                events.push(line);
            } else {
                break line;
            }
        };
        assert!(is_ok(&ack), "apply failed: {}", ack.to_json());
        assert!(events.len() <= 1, "more than one event for one batch");

        mirror.apply_stream(batch).unwrap();
        let (entered, left) = tracker.observe(&mirror.scores().unwrap().scores.vbc);
        match events.pop() {
            Some(event) => {
                assert_eq!(
                    u64_field(&event, "seq"),
                    u64_field(&ack, "seq_last"),
                    "event not stamped with its batch"
                );
                assert_eq!(
                    ids(&event, "entered"),
                    entered,
                    "batch {i}: entered diverged"
                );
                assert_eq!(ids(&event, "left"), left, "batch {i}: left diverged");
                assert_eq!(
                    top_ids(&event),
                    tracker.current(),
                    "batch {i}: top diverged"
                );
            }
            // no event means the watched ranking (ids *and* score bits)
            // did not move; the tracker must agree there was no turnover
            None => {
                assert!(
                    entered.is_empty() && left.is_empty(),
                    "batch {i}: tracker saw turnover but no event arrived"
                );
            }
        }
    }

    handle.shutdown();
    handle.join();
}

/// Subscriptions under a concurrent writer: the ack arrives before the
/// seeded event, every event's seq is nondecreasing, and after the
/// writer's acked batch the subscriber hears about the ranking change.
#[test]
fn subscriber_sees_ordered_deltas_while_a_writer_streams() {
    let g = base_graph();
    let session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    let handle = Server::spawn(ServedSession::new(session), ServerConfig::default()).unwrap();
    let addr = handle.tcp_addr().unwrap();

    let mut sub = Client::connect(addr);
    let ack = sub.request(r#"{"id":"s","cmd":"subscribe","what":"top_k","k":4}"#);
    assert!(is_ok(&ack), "subscribe failed: {}", ack.to_json());
    assert_eq!(ack.get("k").and_then(Value::as_u64), Some(4));
    // the seeded first event follows the ack, never precedes it
    let seed = sub.recv();
    assert_eq!(seed.get("event").and_then(Value::as_str), Some("top_k"));
    assert_eq!(u64_field(&seed, "seq"), 0);

    let mut writer = Client::connect(addr);
    for (i, batch) in writer_ops(&writer_pools(&g)[0]).chunks(BATCH).enumerate() {
        writer.request_ok(&apply_line(i as u64, Some("exact"), batch));
    }

    // every event for the acked batches is already in the subscriber's
    // outbound queue (the writer task pushed them while processing the
    // jobs), so a ping probe sent now is a barrier: drain events until its
    // response shows up, checking seq never goes backwards
    sub.send(r#"{"id":"probe","cmd":"ping"}"#);
    let mut last_seq = 0;
    let mut last_top = seed.get("top").cloned().unwrap();
    loop {
        let line = sub.recv();
        if line.get("id").and_then(Value::as_str) == Some("probe") {
            assert!(is_ok(&line));
            break;
        }
        assert_eq!(line.get("event").and_then(Value::as_str), Some("top_k"));
        let seq = u64_field(&line, "seq");
        assert!(seq >= last_seq, "event seq went backwards");
        for key in ["top", "entered", "left"] {
            assert!(line.get(key).is_some(), "event missing {key}");
        }
        last_seq = seq;
        last_top = line.get("top").cloned().unwrap();
    }

    // the subscriber's accumulated view is exactly the current ranking:
    // the last delta it heard matches a fresh top_k of the final state
    let fresh = sub.request_ok(r#"{"id":"q","cmd":"top_k","k":4}"#);
    assert_eq!(
        last_top.to_json(),
        fresh.get("top").unwrap().to_json(),
        "subscriber's last event does not match the final ranking"
    );

    handle.shutdown();
    handle.join();
}
