//! Crash/restart under traffic: a real `sbc serve` child process is
//! aborted **mid-batch** (deterministically, via the
//! `SBC_SERVE_CRASH_AFTER` injection point: the writer task applies and
//! checkpoints exactly the prefix that fits under the limit, then dies
//! without acknowledging) while a reader connection is active. The
//! directory must reopen through `Session::open` without a Brandes
//! bootstrap, bitwise equal to a serial oracle that applied exactly the
//! durable prefix — across the disk backend and sharded p ∈ {1, 3, 8}.

mod common;

use common::{
    apply_line, bits_field, non_edge_adds, tmpdir, to_bits, u64_field, write_edgelist, Client,
    ServeChild,
};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::io::load_graph;
use streaming_bc::{Backend, Session};

/// Updates the server is allowed to apply before the injected abort.
const CRASH_AFTER: u64 = 4;

/// One matrix cell: serve, crash mid-batch, verify both clients observe a
/// clean close (never a hang), then recover the directory bitwise.
fn check_crash_cell(extra_args: &[&str], dir: &std::path::Path, ctx: &str) {
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    let edges = dir.with_extension("edges");
    write_edgelist(&holme_kim(24, 2, 0.3, 11), &edges);
    // the oracle parses the same file the server does, so adjacency
    // order — which the bitwise summation depends on — is identical
    let g = load_graph(&edges).unwrap();
    let updates = non_edge_adds(&g, 7);
    let (batch1, batch2) = updates.split_at(3);
    assert!(
        (batch1.len() as u64) < CRASH_AFTER && CRASH_AFTER < updates.len() as u64,
        "the crash point must land inside the second batch"
    );

    let mut args = vec![
        "--edgelist",
        edges.to_str().unwrap(),
        "--dir",
        dir.to_str().unwrap(),
    ];
    args.extend_from_slice(extra_args);
    let crash = CRASH_AFTER.to_string();
    let server = ServeChild::spawn(&args, &[("SBC_SERVE_CRASH_AFTER", &crash)]);

    let mut reader = Client::connect(server.addr);
    let scores = reader.request_ok(r#"{"cmd":"scores"}"#);
    assert_eq!(
        u64_field(&scores, "seq"),
        0,
        "{ctx}: fresh server not at seq 0"
    );

    let mut writer = Client::connect(server.addr);
    let ack = writer.request_ok(&apply_line(1, None, batch1));
    assert_eq!(u64_field(&ack, "seq_last"), batch1.len() as u64);

    // this batch straddles the crash point: the server applies one more
    // update, checkpoints, and aborts without acking
    writer.send_lossy(&apply_line(1, None, batch2));
    assert_eq!(
        writer.recv_line(),
        None,
        "{ctx}: the crashed server must close the writer connection, not ack"
    );
    // the concurrent reader sees the close too — no hang, no garbage
    reader.send_lossy(r#"{"cmd":"scores"}"#);
    assert_eq!(
        reader.recv_line(),
        None,
        "{ctx}: the crashed server must close the reader connection"
    );
    let (status, _) = server.wait();
    assert!(!status.success(), "{ctx}: an abort must not exit cleanly");

    // recovery: exactly the durable prefix, no re-bootstrap
    let mut reopened = Session::open(dir)
        .unwrap_or_else(|e| panic!("{ctx}: mid-batch crash left an unopenable dir: {e}"));
    assert_eq!(
        reopened.brandes_runs().unwrap_or(0),
        0,
        "{ctx}: recovery re-ran the bootstrap"
    );
    let recovered = reopened.reduce_exact().unwrap().scores;

    let mut oracle = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    oracle
        .apply_stream(&updates[..CRASH_AFTER as usize])
        .unwrap();
    let expect = oracle.reduce_exact().unwrap().scores;
    assert_eq!(
        to_bits(&recovered.vbc),
        to_bits(&expect.vbc),
        "{ctx}: recovered VBC is not the durable prefix"
    );
    assert_eq!(
        to_bits(&recovered.ebc),
        to_bits(&expect.ebc),
        "{ctx}: recovered EBC is not the durable prefix"
    );

    // and the recovery is a true continuation: the lost suffix can simply
    // be replayed
    reopened
        .apply_stream(&updates[CRASH_AFTER as usize..])
        .unwrap();
    oracle
        .apply_stream(&updates[CRASH_AFTER as usize..])
        .unwrap();
    let a = reopened.reduce_exact().unwrap().scores;
    let b = oracle.reduce_exact().unwrap().scores;
    assert_eq!(
        to_bits(&a.vbc),
        to_bits(&b.vbc),
        "{ctx}: replaying the lost suffix diverged"
    );

    // sanity on the wire-shape of the recovered state
    assert_eq!(bits_field(&scores, "vbc").len(), g.n());
}

#[test]
fn disk_server_crashes_mid_batch_and_recovers_bitwise() {
    let dir = tmpdir("crash_disk");
    check_crash_cell(&[], &dir, "disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_servers_crash_mid_batch_and_recover_bitwise() {
    for p in ["1", "3", "8"] {
        let dir = tmpdir(&format!("crash_sharded_{p}"));
        check_crash_cell(&["--workers", p], &dir, &format!("sharded p={p}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
