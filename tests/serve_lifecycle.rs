//! Server lifecycle: graceful SIGTERM drain in a real child process, the
//! in-process `shutdown` command path, and the degraded server a
//! records-ahead session directory yields — every exit path must leave a
//! directory that reopens bootstrap-free, and every client-visible
//! failure must be a typed error, never a hang.

mod common;

use common::{
    apply_line, error_kind, is_ok, non_edge_adds, tmpdir, to_bits, u64_field, write_edgelist,
    Client, ServeChild,
};
use ebc_serve::json::Value;
use ebc_serve::{Server, ServerConfig};
use std::net::TcpStream;
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::io::load_graph;
use streaming_bc::serve::ServedSession;
use streaming_bc::{Backend, Checkpoint, Session, SessionError, Update};

/// SIGTERM against a live `sbc serve` child: in-flight work drains, the
/// session checkpoints, the process exits 0 — and the directory reopens
/// with zero Brandes runs, bitwise equal to the acked stream.
#[test]
fn sigterm_drains_checkpoints_and_reopens_bootstrap_free() {
    let dir = tmpdir("lifecycle_sigterm");
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    let edges = dir.with_extension("edges");
    write_edgelist(&holme_kim(24, 2, 0.3, 11), &edges);
    let g = load_graph(&edges).unwrap();
    let batch = non_edge_adds(&g, 3);

    let server = ServeChild::spawn(
        &[
            "--edgelist",
            edges.to_str().unwrap(),
            "--dir",
            dir.to_str().unwrap(),
            "--workers",
            "3",
        ],
        &[],
    );
    let addr = server.addr;
    let mut client = Client::connect(addr);
    let ack = client.request_ok(&apply_line(1, None, &batch));
    assert_eq!(u64_field(&ack, "seq_last"), batch.len() as u64);

    server.signal("TERM");
    let (status, rest) = server.wait();
    assert!(status.success(), "SIGTERM drain must exit cleanly");
    assert!(
        rest.contains("drained"),
        "child did not report the drain: {rest:?}"
    );
    // the listener died with the process: fresh connections are refused
    assert!(
        TcpStream::connect(addr).is_err(),
        "a drained server must not accept connections"
    );

    let mut reopened = Session::open(&dir).unwrap();
    assert_eq!(
        reopened.brandes_runs().unwrap_or(0),
        0,
        "the drain checkpoint must make reopen bootstrap-free"
    );
    let recovered = reopened.reduce_exact().unwrap().scores;
    let mut oracle = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    oracle.apply_stream(&batch).unwrap();
    let expect = oracle.reduce_exact().unwrap().scores;
    assert_eq!(to_bits(&recovered.vbc), to_bits(&expect.vbc));
    assert_eq!(to_bits(&recovered.ebc), to_bits(&expect.ebc));
    std::fs::remove_dir_all(&dir).ok();
}

/// The in-process `shutdown` command: acked with `draining`, after which
/// the connection is closed promptly (work sent after the ack is refused
/// by the close, never half-applied) and the directory reopens
/// bootstrap-free with exactly the acked stream.
#[test]
fn shutdown_command_drains_and_refuses_new_work() {
    let dir = tmpdir("lifecycle_cmd");
    let g = holme_kim(24, 2, 0.3, 11);
    let batch = non_edge_adds(&g, 2);
    let session = Session::builder()
        .backend(Backend::Sharded(dir.clone()))
        .workers(3)
        .build(&g)
        .unwrap();
    let handle = Server::spawn(ServedSession::new(session), ServerConfig::default()).unwrap();
    let addr = handle.tcp_addr().unwrap();

    let mut client = Client::connect(addr);
    client.request_ok(&apply_line(1, None, &batch));

    let resp = client.request_ok(r#"{"id":"bye","cmd":"shutdown"}"#);
    assert_eq!(resp.get("draining").and_then(Value::as_bool), Some(true));
    assert!(handle.is_shutting_down());

    // the shutdown flag was set before the ack was enqueued, so a batch
    // sent after the ack is never even read: the draining server closes
    // the connection instead of half-applying late work
    client.send_lossy(&apply_line(1, None, &non_edge_adds(&g, 3)[2..]));
    assert_eq!(
        client.recv_line(),
        None,
        "a draining server must close, not apply, post-shutdown work"
    );

    drop(client);
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "a joined server must not accept connections"
    );

    let mut reopened = Session::open(&dir).unwrap();
    assert_eq!(reopened.brandes_runs(), Some(0));
    let recovered = reopened.reduce_exact().unwrap().scores;
    let mut oracle = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    oracle.apply_stream(&batch).unwrap();
    assert_eq!(
        to_bits(&recovered.vbc),
        to_bits(&oracle.reduce_exact().unwrap().scores.vbc)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A session directory whose records ran ahead of its manifest cannot be
/// resumed — `sbc serve --open` must still come up and answer every
/// command with the typed `records_ahead` census rather than crash-loop
/// or leave clients hanging.
#[test]
fn records_ahead_directory_serves_typed_errors() {
    let dir = tmpdir("lifecycle_degraded");
    let g = holme_kim(24, 2, 0.3, 11);
    {
        // manual checkpointing + a growth tail that is never checkpointed:
        // the records then own more sources than the manifest's graph
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .checkpoint(Checkpoint::Manual)
            .build(&g)
            .unwrap();
        session
            .apply_stream(&[Update::add(0, 24), Update::add(24, 25)])
            .unwrap();
        drop(session);
    }
    // precondition: the library refuses this directory with the census
    match Session::open(&dir) {
        Err(SessionError::RecordsAhead { .. }) => {}
        other => panic!("expected RecordsAhead, got {other:?}"),
    }

    let server = ServeChild::spawn(&["--open", dir.to_str().unwrap()], &[]);
    let mut client = Client::connect(server.addr);

    // liveness is still observable
    let pong = client.request(r#"{"id":"p","cmd":"ping"}"#);
    assert!(is_ok(&pong), "ping must work on a degraded server");

    // everything else is the typed census, with all four fields
    for cmd in [
        r#"{"cmd":"scores"}"#,
        r#"{"cmd":"apply","update":["add",0,1]}"#,
        r#"{"cmd":"reduce_exact"}"#,
        r#"{"cmd":"checkpoint"}"#,
    ] {
        let resp = client.request(cmd);
        assert!(!is_ok(&resp), "{cmd} must fail on a degraded server");
        assert_eq!(error_kind(&resp), "records_ahead", "{cmd}");
        let err = resp.get("error").unwrap();
        let manifest = err
            .get("manifest_sources")
            .and_then(Value::as_u64)
            .expect("census field manifest_sources");
        let records = err
            .get("record_sources")
            .and_then(Value::as_u64)
            .expect("census field record_sources");
        assert!(records > manifest, "census must show the skew");
        for field in ["manifest_map_version", "store_version"] {
            assert!(err.get(field).is_some(), "census field {field} missing");
        }
    }

    server.signal("TERM");
    let (status, _) = server.wait();
    assert!(status.success(), "degraded server must still drain cleanly");
    std::fs::remove_dir_all(&dir).ok();
}
