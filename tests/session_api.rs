//! Session facade surface: the builder matrix (backend × workers), the
//! ranking queries (`top_k` against a hand-computed graph,
//! `jaccard_top_k`), configuration validation, and the deprecated
//! constructor shims that must keep behaving like their replacements.

use streaming_bc::core::{Scores, UpdateConfig};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::graph::Graph;
use streaming_bc::store::CodecKind;
use streaming_bc::{Backend, Session, SessionError, Update};

fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (
        s.vbc.iter().map(|x| x.to_bits()).collect(),
        s.ebc.iter().map(|x| x.to_bits()).collect(),
    )
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("sbc_session_api")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every backend × worker combination answers the same stream with
/// bitwise-identical exact scores — the embodiment really is erased.
#[test]
fn builder_matrix_is_bitwise_consistent() {
    let g = holme_kim(30, 3, 0.4, 5);
    let updates = [
        Update::add(0, 17),
        Update::add(3, 30), // vertex 30 arrives
        Update::remove(0, 17),
        Update::add(30, 11),
    ];
    let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
    let dir_base = tmpdir("matrix");
    let configs: Vec<(&str, Backend, usize)> = vec![
        ("mem-1", Backend::Memory, 1),
        ("mem-4", Backend::Memory, 4),
        ("disk-1", Backend::Disk(dir_base.join("disk")), 1),
        ("shard-1", Backend::Sharded(dir_base.join("s1")), 1),
        ("shard-3", Backend::Sharded(dir_base.join("s3")), 3),
        ("shard-8", Backend::Sharded(dir_base.join("s8")), 8),
    ];
    for (name, backend, p) in configs {
        let mut session = Session::builder()
            .backend(backend)
            .workers(p)
            .build(&g)
            .unwrap();
        assert_eq!(session.workers(), p, "{name}");
        session.apply_stream(&updates).unwrap();
        let exact = session.reduce_exact().unwrap().scores;
        match &reference {
            None => reference = Some(bits(&exact)),
            Some(r) => assert_eq!(r, &bits(&exact), "{name} diverged bitwise"),
        }
        session.verify(1e-6).unwrap();
    }
    std::fs::remove_dir_all(&dir_base).ok();
}

/// `top_k` on a hand-computed path graph 0–1–2–3–4: the middle vertex
/// carries the most shortest paths (VBC 8 ordered pairs), its neighbours 6,
/// the leaves 0 — so top-3 is exactly [2, 1, 3] (tie 1 vs 3 broken toward
/// the smaller id).
#[test]
fn top_k_matches_hand_computed_path_graph() {
    let mut g = Graph::with_vertices(5);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
        g.add_edge(u, v).unwrap();
    }
    let mut session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    let vbc = session.scores().unwrap().scores.vbc;
    // ordered-pair convention: v2 sits on (0,3),(0,4),(1,3),(1,4) and their
    // reverses = 8; v1 on (0,2),(0,3),(0,4) doubled = 6; symmetric for v3
    assert_eq!(vbc, vec![0.0, 6.0, 8.0, 6.0, 0.0]);
    assert_eq!(session.top_k(3).unwrap(), vec![2, 1, 3]);
    assert_eq!(session.top_k(1).unwrap(), vec![2]);
    // a removal reshapes the ranking online: cutting (2,3) strands {3,4}
    session.apply(Update::remove(2, 3)).unwrap();
    assert_eq!(session.top_k(1).unwrap(), vec![1]);
}

/// `jaccard_top_k` against reference score vectors — the accuracy metric
/// the Bergamini-style approximation comparison consumes.
#[test]
fn jaccard_top_k_against_references() {
    let mut g = Graph::with_vertices(5);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
        g.add_edge(u, v).unwrap();
    }
    let mut session = Session::builder()
        .backend(Backend::Memory)
        .build(&g)
        .unwrap();
    // session top-2 is {2, 1}
    let agree = [0.0, 9.0, 9.5, 0.0, 0.0]; // top-2 {2, 1}
    assert_eq!(session.jaccard_top_k(&agree, 2).unwrap(), 1.0);
    let disjoint = [0.0, 0.0, 0.0, 5.0, 4.0]; // top-2 {3, 4}
    assert_eq!(session.jaccard_top_k(&disjoint, 2).unwrap(), 0.0);
    let half = [0.0, 0.0, 9.0, 5.0, 0.0]; // top-2 {2, 3}: |∩|=1, |∪|=3
    let j = session.jaccard_top_k(&half, 2).unwrap();
    assert!((j - 1.0 / 3.0).abs() < 1e-12, "got {j}");
    // an exact session scored against its own ranking is perfect — the
    // fixed point the approximation comparison degrades from
    let own = session.scores().unwrap().scores.vbc;
    assert_eq!(session.jaccard_top_k(&own, 3).unwrap(), 1.0);
}

#[test]
fn invalid_configurations_rejected() {
    let g = holme_kim(10, 2, 0.3, 7);
    assert!(matches!(
        Session::builder().workers(0).build(&g),
        Err(SessionError::Config(_))
    ));
    assert!(matches!(
        Session::builder()
            .backend(Backend::Disk(tmpdir("cfg")))
            .workers(3)
            .build(&g),
        Err(SessionError::Config(_))
    ));
}

#[test]
fn validation_errors_leave_session_usable() {
    let g = holme_kim(12, 2, 0.3, 3);
    let mut session = Session::builder()
        .backend(Backend::Memory)
        .workers(2)
        .build(&g)
        .unwrap();
    assert!(session.apply(Update::add(0, 99)).is_err(), "sparse vertex");
    assert!(
        session.apply(Update::remove(0, 11)).is_err(),
        "missing edge"
    );
    session.apply(Update::add(0, 11)).unwrap();
    session.verify(1e-6).unwrap();
}

/// Disk sessions honour the codec knob end to end.
#[test]
fn disk_codec_flows_through() {
    let g = holme_kim(20, 2, 0.3, 11);
    let dir = tmpdir("codec");
    let mut session = Session::builder()
        .backend(Backend::Disk(dir.clone()))
        .codec(CodecKind::Paper)
        .build(&g)
        .unwrap();
    session.apply(Update::add(0, 9)).unwrap();
    drop(session);
    // reopen: the manifest remembers the codec; scores still verify
    let mut resumed = Session::open(&dir).unwrap();
    resumed.verify(1e-6).unwrap();
    drop(resumed);
    std::fs::remove_dir_all(&dir).ok();
}

/// The deprecated constructors must keep working for one release, and
/// behave exactly like their replacements.
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_behave_identically() {
    use streaming_bc::core::BetweennessState;
    use streaming_bc::engine::ClusterEngine;

    let g = holme_kim(18, 2, 0.4, 13);
    let update = Update::add(0, 9);

    // BetweennessState::{init, init_with} vs new/new_with
    let mut old = BetweennessState::init(&g);
    let mut new = BetweennessState::new(&g);
    old.apply(update).unwrap();
    new.apply(update).unwrap();
    assert_eq!(
        bits(&old.exact_scores().unwrap()),
        bits(&new.exact_scores().unwrap())
    );
    let cfg = UpdateConfig::default();
    let mut old = BetweennessState::init_with(g.clone(), cfg.clone());
    old.apply(update).unwrap();
    assert_eq!(
        bits(&old.exact_scores().unwrap()),
        bits(&new.exact_scores().unwrap())
    );

    // BetweennessState::init_into_store vs new_into_store
    let mut old = BetweennessState::init_into_store(
        g.clone(),
        streaming_bc::core::MemoryBdStore::new(g.n()),
        cfg.clone(),
    )
    .unwrap();
    old.apply(update).unwrap();
    assert_eq!(
        bits(&old.exact_scores().unwrap()),
        bits(&new.exact_scores().unwrap())
    );

    // ClusterEngine::{bootstrap, bootstrap_with} vs new/new_with
    let mut old = ClusterEngine::bootstrap(&g, 3).unwrap();
    let mut newc = ClusterEngine::new(&g, 3).unwrap();
    old.apply(update).unwrap();
    newc.apply(update).unwrap();
    assert_eq!(
        bits(&old.reduce_exact().unwrap().scores),
        bits(&newc.reduce_exact().unwrap().scores)
    );
    let mut old = ClusterEngine::bootstrap_with(&g, 3, cfg, |_w, n| {
        Ok(streaming_bc::core::MemoryBdStore::new(n))
    })
    .unwrap();
    old.apply(update).unwrap();
    assert_eq!(
        bits(&old.reduce_exact().unwrap().scores),
        bits(&newc.reduce_exact().unwrap().scores)
    );
}
