//! Replay & retention suite (DESIGN.md §14): checkpoint-and-truncate
//! compaction must bound the live history WAL, sealed segments must keep
//! `Session::replay_to(seq)` **bitwise equal** to what the live session
//! reported at that seq, every seal/truncate crash window must converge at
//! `Session::open`, and a deleted segment must be a typed
//! [`SessionError::HistoryGap`] naming the missing range — across the disk
//! and sharded (p ∈ {1, 3, 8}) backends.

mod common;

use common::{tmpdir, to_bits};
use proptest::collection;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use streaming_bc::core::{BetweennessState, Scores, Update};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::graph::Graph;
use streaming_bc::store::history::{HistoryLog, SealKill};
use streaming_bc::{Backend, CompactionConfig, Session, SessionError};

fn sbits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (to_bits(&s.vbc), to_bits(&s.ebc))
}

/// The backend matrix every cell-based test sweeps: single-machine disk
/// records plus the sharded store at p ∈ {1, 3, 8}.
fn cells(dir_stem: &str) -> Vec<(String, Backend, usize)> {
    let mut out = vec![(
        "disk".to_string(),
        Backend::Disk(tmpdir(&format!("{dir_stem}_disk"))),
        1usize,
    )];
    for p in [1usize, 3, 8] {
        out.push((
            format!("sharded p={p}"),
            Backend::Sharded(tmpdir(&format!("{dir_stem}_sharded{p}"))),
            p,
        ));
    }
    out
}

fn backend_dir(b: &Backend) -> std::path::PathBuf {
    match b {
        Backend::Disk(d) | Backend::Sharded(d) => d.clone(),
        Backend::Memory => unreachable!("durable cells only"),
    }
}

/// A graph plus a long mixed stream: additions, growth (vertex adoption),
/// and removals — enough appended bytes to force several compactions under
/// a small `max_live_wal_bytes`.
fn scenario() -> (Graph, Vec<Update>) {
    let g = holme_kim(24, 3, 0.4, 7);
    let mut stream: Vec<Update> = addition_stream(&g, 14, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    stream.push(Update::add(3, 24)); // vertex 24 arrives
    stream.push(Update::add(24, 25)); // and 25
    stream.extend(
        removal_stream(&g, 8, 2)
            .into_iter()
            .map(|(u, v)| Update::remove(u, v)),
    );
    stream.push(Update::add(5, 26));
    (g, stream)
}

fn oracle(g: &Graph, stream: &[Update]) -> Scores {
    let mut st = BetweennessState::new(g);
    for &u in stream {
        st.apply(u).unwrap();
    }
    st.exact_scores().unwrap()
}

/// Satellite (a) + tentpole acceptance: after a long stream under a tight
/// `max_live_wal_bytes`, the live WAL is bounded by the threshold, the
/// checkpointed prefix lives on in sealed segments, and the byte
/// accounting (`history_stats`) reflects it — every backend.
#[test]
fn compaction_bounds_live_wal() {
    let (g, stream) = scenario();
    const MAX: u64 = 256;
    for (ctx, backend, p) in cells("replay_bound") {
        let dir = backend_dir(&backend);
        let mut session = Session::builder()
            .backend(backend)
            .workers(p)
            .compaction(CompactionConfig {
                keep_history: true,
                max_live_wal_bytes: MAX,
            })
            .build(&g)
            .unwrap();
        for &u in &stream {
            session.apply(u).unwrap();
        }
        let stats = session
            .history_stats()
            .unwrap_or_else(|| panic!("{ctx}: durable session reports no history stats"));
        assert!(
            stats.live_wal_bytes <= MAX,
            "{ctx}: live WAL {} bytes exceeds the {MAX}-byte compaction bound",
            stats.live_wal_bytes
        );
        assert!(stats.segments >= 2, "{ctx}: expected several compactions");
        assert!(stats.sealed_bytes > 0, "{ctx}: sealed history is empty");
        assert!(stats.last_compaction_seq > 0, "{ctx}");
        assert_eq!(stats.last_seq, session.seq(), "{ctx}");
        assert_eq!(stats.last_seq, stream.len() as u64, "{ctx}");
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The tentpole read path: `replay_to(seq)` is bitwise equal to what the
/// live session's `reduce_exact` reported at that seq — at **every** seq of
/// the history, across compactions, on every backend. `replay_dir` (the
/// `sbc replay` entry point) agrees without opening the stores.
#[test]
fn replay_is_bitwise_with_live_at_every_seq() {
    let (g, stream) = scenario();
    for (ctx, backend, p) in cells("replay_bitwise") {
        let dir = backend_dir(&backend);
        let mut session = Session::builder()
            .backend(backend)
            .workers(p)
            .compaction(CompactionConfig {
                keep_history: true,
                max_live_wal_bytes: 128,
            })
            .build(&g)
            .unwrap();
        let mut live = Vec::new(); // live bits at seq 1..=len
        for &u in &stream {
            session.apply(u).unwrap();
            live.push(sbits(&session.reduce_exact().unwrap().scores));
        }
        for (i, want) in live.iter().enumerate() {
            let seq = (i + 1) as u64;
            let replayed = session
                .replay_to(seq)
                .unwrap_or_else(|e| panic!("{ctx}: replay_to({seq}) failed: {e}"));
            assert_eq!(
                want,
                &sbits(&replayed.scores),
                "{ctx}: replay_to({seq}) diverged from the live session"
            );
        }
        drop(session);
        let full = Session::replay_dir(&dir, None).unwrap();
        assert_eq!(full.seq, stream.len() as u64, "{ctx}");
        assert_eq!(
            live.last().unwrap(),
            &sbits(&full.reduced.scores),
            "{ctx}: replay_dir(all) diverged"
        );
        let mid = (stream.len() / 2) as u64;
        let half = Session::replay_dir(&dir, Some(mid)).unwrap();
        assert_eq!(
            &live[mid as usize - 1],
            &sbits(&half.reduced.scores),
            "{ctx}: replay_dir(at={mid}) diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Compaction must be invisible to a restart: a session compacted at every
/// checkpoint reopens bitwise identical to one that never compacted, and
/// both keep absorbing updates after the reopen.
#[test]
fn reopen_after_compaction_is_bitwise_with_uncompacted() {
    let (g, stream) = scenario();
    let (head, tail) = stream.split_at(stream.len() - 3);
    let full_oracle = oracle(&g, &stream);
    let configs = [("compact-always", 0u64), ("compact-never", u64::MAX)];
    let mut reopened: Vec<(String, Session, std::path::PathBuf)> = Vec::new();
    for (label, max) in configs {
        let dir = tmpdir(&format!("replay_reopen_{label}"));
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .compaction(CompactionConfig {
                keep_history: true,
                max_live_wal_bytes: max,
            })
            .build(&g)
            .unwrap();
        session.apply_stream(head).unwrap();
        drop(session); // kill between batches; EveryApply made it durable
        let session = Session::open(&dir).unwrap();
        reopened.push((label.to_string(), session, dir));
    }
    let mut bits = Vec::new();
    for (label, session, _) in &mut reopened {
        session.apply_stream(tail).unwrap();
        let got = sbits(&session.reduce_exact().unwrap().scores);
        assert_eq!(
            got,
            sbits(&full_oracle),
            "{label}: reopened run diverged from the serial oracle"
        );
        bits.push(got);
    }
    assert_eq!(bits[0], bits[1], "compaction changed the reopened scores");
    for (_, session, dir) in reopened {
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite (f): a deleted history segment is a typed refusal — both
/// `Session::open` and `Session::replay_dir` name the missing seq range
/// instead of silently replaying a different graph.
#[test]
fn deleted_segment_is_a_typed_gap() {
    let (g, stream) = scenario();
    let dir = tmpdir("replay_gap");
    let mut session = Session::builder()
        .backend(Backend::Disk(dir.clone()))
        .compaction(CompactionConfig {
            keep_history: true,
            // compact at every checkpoint: one single-seq segment per apply
            max_live_wal_bytes: 0,
        })
        .build(&g)
        .unwrap();
    for &u in &stream {
        session.apply(u).unwrap();
    }
    drop(session);

    // delete a mid-history segment and parse its range from the file name
    let mut segs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("history-") && n.ends_with(".seg"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 4, "expected one segment per apply");
    let victim = segs[segs.len() / 2].clone();
    let range: Vec<u64> = victim
        .trim_start_matches("history-")
        .trim_end_matches(".seg")
        .split('-')
        .map(|s| s.parse().unwrap())
        .collect();
    std::fs::remove_file(dir.join(&victim)).unwrap();

    for (what, err) in [
        ("open", Session::open(&dir).map(|_| ()).unwrap_err()),
        (
            "replay_dir",
            Session::replay_dir(&dir, None).map(|_| ()).unwrap_err(),
        ),
    ] {
        match err {
            SessionError::HistoryGap {
                missing_first,
                missing_last,
            } => {
                assert_eq!(
                    (missing_first, missing_last),
                    (range[0], range[1]),
                    "{what}: gap does not name the deleted segment {victim}"
                );
            }
            other => panic!("{what}: expected HistoryGap, got: {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `keep_history = false`: bounded disk with **no** sealed segments, and
/// any attempt to time-travel below the truncation point is the typed gap
/// (`missing_first = 1` — the whole discarded prefix is named).
#[test]
fn keep_history_false_bounds_disk_and_refuses_time_travel() {
    let (g, stream) = scenario();
    let dir = tmpdir("replay_nokeep");
    let mut session = Session::builder()
        .backend(Backend::Sharded(dir.clone()))
        .workers(3)
        .compaction(CompactionConfig {
            keep_history: false,
            max_live_wal_bytes: 0,
        })
        .build(&g)
        .unwrap();
    for &u in &stream {
        session.apply(u).unwrap();
    }
    let stats = session.history_stats().unwrap();
    assert_eq!(stats.segments, 0, "keep_history=false sealed a segment");
    assert_eq!(stats.sealed_bytes, 0);
    assert!(stats.live_wal_bytes <= 64, "discarded prefix not truncated");
    assert!(stats.last_compaction_seq > 0);

    match session.replay_to(session.seq()).unwrap_err() {
        SessionError::HistoryGap {
            missing_first,
            missing_last,
        } => {
            assert_eq!(missing_first, 1);
            assert_eq!(missing_last, stats.last_compaction_seq);
        }
        other => panic!("expected HistoryGap, got: {other}"),
    }
    // the stream itself still works and restarts fine
    drop(session);
    let mut session = Session::open(&dir).unwrap();
    session.apply(Update::add(0, 27)).unwrap();
    let mut full = stream.clone();
    full.push(Update::add(0, 27));
    assert_eq!(
        sbits(&session.reduce_exact().unwrap().scores),
        sbits(&oracle(&g, &full)),
        "keep_history=false restart diverged"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (c), the crash matrix at the session level: inject a kill in
/// every seal/truncate window of a compaction, then `Session::open` must
/// converge the directory — the reopened session reduces bitwise with the
/// oracle, keeps absorbing updates, and the whole history stays replayable
/// with no seq lost or doubled. Disk + sharded p ∈ {1, 3, 8}.
#[test]
fn every_truncation_crash_window_converges_on_open() {
    let (g, stream) = scenario();
    let windows = [
        SealKill::BeforeSeal,
        SealKill::AfterSeal,
        SealKill::AfterMeta,
        SealKill::MidTruncate,
    ];
    for kill in windows {
        for (ctx, backend, p) in cells(&format!("replay_kill_{kill:?}")) {
            let ctx = format!("{ctx} kill={kill:?}");
            let dir = backend_dir(&backend);
            let mut session = Session::builder()
                .backend(backend)
                .workers(p)
                .compaction(CompactionConfig {
                    keep_history: true,
                    // never auto-compact: the injected seal below is the
                    // only compaction this directory sees
                    max_live_wal_bytes: u64::MAX,
                })
                .build(&g)
                .unwrap();
            for &u in &stream {
                session.apply(u).unwrap();
            }
            let live = sbits(&session.reduce_exact().unwrap().scores);
            drop(session);

            // die inside the compaction: the in-memory log is stale after
            // the kill fires and must be dropped, like the process it
            // stands in for
            let mid = stream.len() as u64 / 2;
            let mut log = HistoryLog::open(&dir).unwrap();
            let _ = log.seal_upto_with_kill(mid, Some(kill)).unwrap();
            drop(log);

            let mut session = Session::open(&dir)
                .unwrap_or_else(|e| panic!("{ctx}: reopen after kill failed: {e}"));
            assert_eq!(
                live,
                sbits(&session.reduce_exact().unwrap().scores),
                "{ctx}: scores diverged across the crashed compaction"
            );
            let replay = session
                .replay_to(stream.len() as u64)
                .unwrap_or_else(|e| panic!("{ctx}: full replay failed: {e}"));
            assert_eq!(live, sbits(&replay.scores), "{ctx}: replay diverged");
            // and the history keeps extending past the recovered seal
            session.apply(Update::add(1, 27)).unwrap();
            assert_eq!(session.seq(), stream.len() as u64 + 1, "{ctx}");
            drop(session);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The `sbc replay` CLI surface: the printed `v`/`e` lines parse back to
/// the exact bits the live session reported (f64 `Display` is
/// shortest-round-trip), for both `--at all` and a mid-history seq.
#[test]
fn sbc_replay_cli_reproduces_live_scores() {
    let (g, stream) = scenario();
    let dir = tmpdir("replay_cli");
    let mut session = Session::builder()
        .backend(Backend::Disk(dir.clone()))
        .compaction(CompactionConfig {
            keep_history: true,
            max_live_wal_bytes: 128,
        })
        .build(&g)
        .unwrap();
    let mid = (stream.len() / 2) as u64;
    let mut at_mid = None;
    for (i, &u) in stream.iter().enumerate() {
        session.apply(u).unwrap();
        if (i + 1) as u64 == mid {
            at_mid = Some(to_bits(&session.reduce_exact().unwrap().scores.vbc));
        }
    }
    let live = session.reduce_exact().unwrap().scores;
    let live_graph = session.graph().clone();
    let live_edges: Vec<(u32, u32, u64)> = live
        .ebc_entries(&live_graph)
        .into_iter()
        .map(|(key, x)| {
            let (u, v) = key.endpoints();
            (u, v, x.to_bits())
        })
        .collect();
    drop(session);

    let run = |at: &str| -> Vec<String> {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_sbc"))
            .args(["replay", "--dir", dir.to_str().unwrap(), "--at", at])
            .output()
            .expect("spawn sbc replay");
        assert!(
            out.status.success(),
            "sbc replay --at {at} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .map(|l| l.to_string())
            .collect()
    };

    let lines = run("all");
    assert!(lines[0].contains(&format!("seq={}", stream.len())));
    let mut vbc = Vec::new();
    let mut edges = Vec::new();
    for line in &lines[1..] {
        let f: Vec<&str> = line.split_whitespace().collect();
        match f[0] {
            "v" => vbc.push(f[2].parse::<f64>().unwrap().to_bits()),
            "e" => edges.push((
                f[1].parse::<u32>().unwrap(),
                f[2].parse::<u32>().unwrap(),
                f[3].parse::<f64>().unwrap().to_bits(),
            )),
            other => panic!("unexpected line tag {other:?}"),
        }
    }
    assert_eq!(vbc, to_bits(&live.vbc), "CLI vertex scores diverged");
    assert_eq!(edges, live_edges, "CLI edge scores diverged");

    let lines = run(&mid.to_string());
    let vbc_mid: Vec<u64> = lines[1..]
        .iter()
        .filter(|l| l.starts_with("v "))
        .map(|l| {
            l.split_whitespace()
                .nth(2)
                .unwrap()
                .parse::<f64>()
                .unwrap()
                .to_bits()
        })
        .collect();
    assert_eq!(
        vbc_mid,
        at_mid.unwrap(),
        "CLI mid-history replay diverged from the live session at that seq"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One step of a random evolution history (toggle or grow — the same op
/// family the CSR oracle sweeps).
#[derive(Debug, Clone, Copy)]
enum HistOp {
    Toggle { u_pick: usize, v_pick: usize },
    Grow { u_pick: usize },
}

fn hist_op() -> impl Strategy<Value = HistOp> {
    prop_oneof![
        5 => (0usize..1024, 0usize..1024).prop_map(|(u, v)| HistOp::Toggle {
            u_pick: u,
            v_pick: v,
        }),
        1 => (0usize..1024).prop_map(|u| HistOp::Grow { u_pick: u }),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Satellite (c), the property form: over random histories on a
    /// compacting sharded session, `replay_to(seq)` is bitwise equal to
    /// the live oracle at **every** checkpoint of the history.
    #[test]
    fn replay_matches_live_oracle_on_random_histories(
        seed in 0u64..1_000,
        ops in collection::vec(hist_op(), 1..14),
    ) {
        let g = holme_kim(12, 2, 0.3, seed);
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let dir = tmpdir(&format!("replay_prop_{case}"));
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .compaction(CompactionConfig {
                keep_history: true,
                max_live_wal_bytes: 64,
            })
            .build(&g)
            .unwrap();
        let mut oracle = BetweennessState::new(&g);
        let mut live = Vec::new();
        for op in &ops {
            let n = oracle.graph().n();
            let update = match *op {
                HistOp::Toggle { u_pick, v_pick } => {
                    let u = (u_pick % n) as u32;
                    let v = (v_pick % n) as u32;
                    if u == v {
                        continue;
                    }
                    if oracle.graph().has_edge(u, v) {
                        Update::remove(u, v)
                    } else {
                        Update::add(u, v)
                    }
                }
                HistOp::Grow { u_pick } => Update::add((u_pick % n) as u32, n as u32),
            };
            oracle.apply(update).unwrap();
            session.apply(update).unwrap();
            live.push(sbits(oracle.exact_scores().as_ref().unwrap()));
        }
        for (i, want) in live.iter().enumerate() {
            let seq = (i + 1) as u64;
            let replayed = session.replay_to(seq).unwrap();
            prop_assert_eq!(
                want,
                &sbits(&replayed.scores),
                "seed={} seq={}: replay diverged from the live oracle",
                seed, seq
            );
        }
        drop(session);
        std::fs::remove_dir_all(&dir).ok();
    }
}
