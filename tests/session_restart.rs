//! Durable-restart suite: a killed session reopened with `Session::open`
//! must (a) run **zero** Brandes bootstrap iterations and (b) produce
//! exact scores bitwise identical to a surviving oracle that applied the
//! same updates — across the disk (single-machine DO) and sharded
//! (p ∈ {1, 3, 8}) backends, with kills injected between `apply_stream`
//! batches and mid-handoff at the store layer.

use streaming_bc::core::{BetweennessState, Scores, Update};
use streaming_bc::gen::models::holme_kim;
use streaming_bc::gen::streams::{addition_stream, removal_stream};
use streaming_bc::graph::Graph;
use streaming_bc::{Backend, Checkpoint, Session};

fn bits(s: &Scores) -> (Vec<u64>, Vec<u64>) {
    (
        s.vbc.iter().map(|x| x.to_bits()).collect(),
        s.ebc.iter().map(|x| x.to_bits()).collect(),
    )
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("sbc_session_restart")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A graph plus two update batches; the first batch grows the vertex set so
/// restart must also recover adopted sources.
fn scenario() -> (Graph, Vec<Update>, Vec<Update>) {
    let g = holme_kim(40, 3, 0.4, 9);
    let mut batch1: Vec<Update> = addition_stream(&g, 5, 1)
        .into_iter()
        .map(|(u, v)| Update::add(u, v))
        .collect();
    batch1.push(Update::add(7, 40)); // vertex 40 arrives
    batch1.push(Update::add(40, 41)); // and 41
    let batch2: Vec<Update> = removal_stream(&g, 5, 2)
        .into_iter()
        .map(|(u, v)| Update::remove(u, v))
        .chain([Update::add(2, 42)]) // growth after the restart too
        .collect();
    (g, batch1, batch2)
}

/// The surviving single-state oracle: never killed, same update history.
fn oracle(g: &Graph, batches: &[&[Update]]) -> Scores {
    let mut single = BetweennessState::new(g);
    for batch in batches {
        for &u in *batch {
            single.apply(u).unwrap();
        }
    }
    single.exact_scores().unwrap()
}

fn check_restart(backend: Backend, dir: &std::path::Path, p: usize, ctx: &str) {
    let (g, batch1, batch2) = scenario();
    let pre_kill_oracle = oracle(&g, &[&batch1]);
    let full_oracle = oracle(&g, &[&batch1, &batch2]);

    // ── run until the kill point ─────────────────────────────────────────
    let mut session = Session::builder()
        .backend(backend)
        .workers(p)
        .build(&g)
        .unwrap();
    session.apply_stream(&batch1).unwrap();
    let pre_kill = session.reduce_exact().unwrap().scores;
    assert_eq!(
        bits(&pre_kill),
        bits(&pre_kill_oracle),
        "{ctx}: pre-kill scores already diverged"
    );
    // kill between apply_stream batches: the process dies, nothing is
    // shut down in an orderly way beyond what EveryApply already made
    // durable
    drop(session);

    // ── re-bootstrap-free reopen ─────────────────────────────────────────
    let mut resumed = Session::open(dir).unwrap();
    assert_eq!(resumed.workers(), p, "{ctx}: worker count not restored");
    assert_eq!(
        resumed.brandes_runs().unwrap_or(0),
        0,
        "{ctx}: resume ran a Brandes bootstrap"
    );
    assert_eq!(resumed.graph().n(), g.n() + 2, "{ctx}: graph not restored");
    let recovered = resumed.reduce_exact().unwrap().scores;
    assert_eq!(
        bits(&recovered),
        bits(&pre_kill_oracle),
        "{ctx}: recovered scores not bitwise equal to the surviving oracle"
    );
    // stronger still: a fresh Brandes bootstrap of the recovered graph
    // yields the same bits (the kernel's record updates are bitwise
    // faithful to recomputation, and the structural snapshot preserved the
    // adjacency order the summation depends on)
    let fresh = BetweennessState::new(resumed.graph())
        .exact_scores()
        .unwrap();
    assert_eq!(
        bits(&recovered),
        bits(&fresh),
        "{ctx}: recovered scores not bitwise equal to a fresh bootstrap"
    );

    // ── the restart is a true continuation ───────────────────────────────
    resumed.apply_stream(&batch2).unwrap();
    let continued = resumed.reduce_exact().unwrap().scores;
    assert_eq!(
        bits(&continued),
        bits(&full_oracle),
        "{ctx}: post-restart stream diverged from the surviving oracle"
    );
    resumed.verify(1e-6).unwrap();
}

#[test]
fn disk_session_restarts_bitwise_equal() {
    let dir = tmpdir("disk");
    check_restart(Backend::Disk(dir.clone()), &dir, 1, "disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_sessions_restart_bitwise_equal() {
    for p in [1usize, 3, 8] {
        let dir = tmpdir(&format!("sharded_{p}"));
        check_restart(
            Backend::Sharded(dir.clone()),
            &dir,
            p,
            &format!("sharded p={p}"),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Killing after each single `apply` (not just batch boundaries): under
/// `Checkpoint::EveryApply` every apply is a durable cut point.
#[test]
fn kill_after_every_single_apply() {
    let (g, batch1, _) = scenario();
    let dir = tmpdir("every_apply");
    {
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .build(&g)
            .unwrap();
        session.apply(batch1[0]).unwrap();
        drop(session); // kill #1
    }
    let mut single = BetweennessState::new(&g);
    single.apply(batch1[0]).unwrap();
    for &u in &batch1[1..4] {
        let mut session = Session::open(&dir).unwrap();
        session.apply(u).unwrap();
        single.apply(u).unwrap();
        let a = session.reduce_exact().unwrap().scores;
        let b = single.exact_scores().unwrap();
        assert_eq!(bits(&a), bits(&b), "diverged after kill+apply of {u:?}");
        drop(session); // kill again
    }
}

/// Manual checkpointing: the recovery cut is the last checkpoint. A clean
/// kill right after `checkpoint()` reopens bitwise-equal; a kill with an
/// un-checkpointed *growth* tail leaves the (synchronously written)
/// records owning more sources than the manifest's graph — which
/// `Session::open` must detect and refuse rather than resume garbage.
#[test]
fn manual_checkpoint_defines_the_recovery_cut() {
    let (g, batch1, _) = scenario();
    let dir = tmpdir("manual");
    let (upto_ckpt, after_ckpt) = batch1.split_at(3);
    {
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .checkpoint(Checkpoint::Manual)
            .build(&g)
            .unwrap();
        session.apply_stream(upto_ckpt).unwrap();
        session.checkpoint().unwrap();
        drop(session); // kill right at the checkpoint: clean cut
    }
    {
        let mut resumed = Session::open(&dir).unwrap();
        let a = resumed.reduce_exact().unwrap().scores;
        let b = oracle(&g, &[upto_ckpt]);
        assert_eq!(bits(&a), bits(&b), "checkpointed cut diverged");
        // keep Manual mode, stream the growth tail, and die un-checkpointed
        resumed.set_checkpoint(Checkpoint::Manual);
        resumed.apply_stream(after_ckpt).unwrap();
        drop(resumed);
    }
    // the tail grew the vertex set, so the records now own more sources
    // than the checkpointed manifest's graph: open must report the skew
    // (records ahead of the manifest), not silently replay
    let err = Session::open(&dir).unwrap_err();
    match err {
        streaming_bc::SessionError::RecordsAhead {
            manifest_sources,
            record_sources,
            ..
        } => {
            assert_eq!(manifest_sources, g.n(), "manifest is the checkpoint cut");
            assert!(
                record_sources > manifest_sources,
                "the un-checkpointed tail grew the record set \
                 ({record_sources} vs {manifest_sources})"
            );
        }
        other => panic!("stale manifest with grown records must be detected, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A kill torn *inside* the store layer (mid-handoff, at a journaled kill
/// point) still reopens to exactly-once ownership, and the session resumes
/// bitwise-equal: the shard recovery and the resume path compose.
#[test]
fn mid_handoff_kill_then_session_open() {
    use streaming_bc::store::{BdStore as _, ShardSet};

    let (g, batch1, _) = scenario();
    let dir = tmpdir("handoff_kill");
    let oracle_scores = oracle(&g, &[&batch1]);
    {
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .build(&g)
            .unwrap();
        session.apply_stream(&batch1).unwrap();
        drop(session);
    }
    // reopen the directory at the store layer and die mid-handoff
    {
        let mut set = ShardSet::open(&dir).unwrap();
        let donor_sources = set.shard(0).sources();
        let victim = donor_sources[0];
        set.handoff_crashing(
            victim,
            0,
            1,
            streaming_bc::store::shard::HandoffKill::AfterExport,
        )
        .unwrap();
        drop(set); // the "process" dies with the handoff half-done
    }
    // Session::open must compose shard recovery (roll the handoff forward)
    // with the re-bootstrap-free resume
    let mut resumed = Session::open(&dir).unwrap();
    assert_eq!(resumed.brandes_runs(), Some(0));
    let recovered = resumed.reduce_exact().unwrap().scores;
    assert_eq!(
        bits(&recovered),
        bits(&oracle_scores),
        "mid-handoff kill changed the recovered scores"
    );
    drop(resumed);
    std::fs::remove_dir_all(&dir).ok();
}

/// Foreign manifests are rejected: a session manifest from directory A
/// combined with directory B's shard files must not silently resume.
#[test]
fn mixed_session_directories_rejected() {
    let (g, batch1, _) = scenario();
    let g2 = holme_kim(40, 3, 0.4, 123); // same size, different session
    let dir_a = tmpdir("mix_a");
    let dir_b = tmpdir("mix_b");
    for (dir, graph) in [(&dir_a, &g), (&dir_b, &g2)] {
        let mut s = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(2)
            .build(graph)
            .unwrap();
        s.apply_stream(&batch1[..2]).unwrap();
        drop(s);
    }
    // graft A's manifest onto B's stores
    std::fs::copy(
        dir_a.join("session.manifest"),
        dir_b.join("session.manifest"),
    )
    .unwrap();
    let err = Session::open(&dir_b).unwrap_err();
    assert!(
        matches!(err, streaming_bc::SessionError::Corrupt(_)),
        "mixed directories must be rejected, got {err:?}"
    );
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Memory sessions are not durable and say so.
#[test]
fn memory_sessions_have_no_directory() {
    let (g, _, _) = scenario();
    let session = Session::builder()
        .backend(Backend::Memory)
        .workers(2)
        .build(&g)
        .unwrap();
    assert!(session.dir().is_none());
}

/// A mid-batch validation error must not skip the checkpoint: the applied
/// prefix (including growth) is durable, and a kill right after the failed
/// call reopens to exactly the prefix state.
#[test]
fn failed_stream_still_checkpoints_the_applied_prefix() {
    let (g, _, _) = scenario();
    let dir = tmpdir("err_ckpt");
    let grows_then_fails = [
        Update::add(0, 40),  // vertex 40 arrives (applied)
        Update::add(40, 5),  // applied
        Update::add(0, 40),  // duplicate edge: validation error here
        Update::add(40, 41), // never dispatched
    ];
    {
        let mut session = Session::builder()
            .backend(Backend::Sharded(dir.clone()))
            .workers(3)
            .build(&g)
            .unwrap();
        let err = session.apply_stream(&grows_then_fails).unwrap_err();
        assert!(
            matches!(err, streaming_bc::SessionError::Engine(_)),
            "expected the validation error, got {err:?}"
        );
        drop(session); // kill right after the failed call
    }
    let mut resumed = Session::open(&dir).unwrap();
    assert_eq!(resumed.graph().n(), g.n() + 1, "prefix growth not covered");
    let recovered = resumed.reduce_exact().unwrap().scores;
    let prefix_oracle = oracle(&g, &[&grows_then_fails[..2]]);
    assert_eq!(
        bits(&recovered),
        bits(&prefix_oracle),
        "recovered state is not the applied prefix"
    );
    drop(resumed);
    std::fs::remove_dir_all(&dir).ok();
}

/// The disk backend rejects grafted manifests too (the sharded analogue is
/// `mixed_session_directories_rejected`): the `session.stamp` identity file
/// binds the store directory to its own manifest.
#[test]
fn mixed_disk_directories_rejected() {
    let (g, batch1, _) = scenario();
    let g2 = holme_kim(40, 3, 0.4, 321); // same n, different session
    let dir_a = tmpdir("dmix_a");
    let dir_b = tmpdir("dmix_b");
    for (dir, graph) in [(&dir_a, &g), (&dir_b, &g2)] {
        let mut s = Session::builder()
            .backend(Backend::Disk(dir.clone()))
            .build(graph)
            .unwrap();
        s.apply_stream(&batch1[..2]).unwrap();
        drop(s);
    }
    std::fs::copy(
        dir_a.join("session.manifest"),
        dir_b.join("session.manifest"),
    )
    .unwrap();
    let err = Session::open(&dir_b).unwrap_err();
    assert!(
        matches!(err, streaming_bc::SessionError::Corrupt(_)),
        "grafted disk manifest must be rejected, got {err:?}"
    );
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
