//! Minimal offline stand-in for `criterion`.
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a warm-up pass followed by a timed loop bounded by both
//! the configured sample count and measurement time; one line with the mean
//! per-iteration wall time is printed per benchmark. No statistics, plots,
//! or baseline comparisons. When invoked with `--test` (as `cargo test
//! --benches` does) every benchmark body runs exactly once.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep compiling.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stub runs one setup per
/// routine call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one batch per sample upstream).
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Benchmark driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    /// Mean per-iteration time of the last `iter*` call.
    mean: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, also primes caches/allocations
        let started = Instant::now();
        let mut iters = 0u32;
        loop {
            black_box(routine());
            iters += 1;
            if iters as usize >= self.samples || started.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean = started.elapsed() / iters;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let mut busy = Duration::ZERO;
        let mut iters = 0u32;
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
            if iters as usize >= self.samples || started.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean = busy / iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on the timed loop per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the stub's warm-up is a single
    /// untimed call, so the duration is ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (samples, measurement) = if self.criterion.test_mode {
            (1, Duration::ZERO)
        } else {
            (self.sample_size, self.measurement)
        };
        let mut bencher = Bencher {
            samples,
            measurement,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{}/{id}: ok (test mode, 1 iteration)", self.name);
        } else {
            println!("{}/{id}: mean {:?} per iteration", self.name, bencher.mean);
        }
        self
    }

    /// Run one benchmark parameterised over `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream finalises reports here; the stub prints
    /// eagerly, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Top-level benchmark manager.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`;
        // run each body once so benches stay cheap under test runners.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement: Duration::from_secs(5),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_nonzero_mean() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("stub");
        let mut setups = 0u64;
        group.bench_with_input(BenchmarkId::new("batched", 1), &3u64, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![x; 4]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("workers", 8).to_string(), "workers/8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
