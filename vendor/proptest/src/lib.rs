//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] test macro (with `#![proptest_config(..)]`), [`Strategy`]
//! with [`Strategy::prop_map`], [`any`], [`Just`], integer and float range
//! strategies, tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! [`prop_assume!`] and the `prop_assert*` family.
//!
//! Semantics versus the real crate (see `vendor/README.md`):
//!
//! * cases are generated from a fixed per-test seed (derived from the test
//!   name), so runs are reproducible;
//! * there is **no shrinking**: a failing case panics with the offending
//!   values left to the assertion message;
//! * `prop_assume!` counts the case as passed rather than redrawing.

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::Prng;

/// Runtime configuration accepted by `#![proptest_config(..)]`.
///
/// Only [`ProptestConfig::cases`] is honoured by the stub; the other fields
/// exist so configs written against the real crate keep compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Ignored (the stub never shrinks).
    pub max_shrink_iters: u32,
    /// Ignored (the stub redraws nothing).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A generator of random values (the stub collapses proptest's value-tree
/// machinery into direct generation — no shrinking).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut Prng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut Prng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default "arbitrary" distribution, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut Prng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut Prng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut Prng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full distribution of `T` (the real crate's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Prng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Prng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut Prng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Boxed generator closure for one [`OneOf`] arm.
type ArmFn<V> = Box<dyn Fn(&mut Prng) -> V>;

/// Weighted union of same-valued strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<(u32, ArmFn<V>)>,
    total_weight: u64,
}

impl<V> OneOf<V> {
    /// Empty union; populate with [`OneOf::with`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        OneOf {
            arms: Vec::new(),
            total_weight: 0,
        }
    }

    /// Append an arm with the given selection weight.
    pub fn with<S: Strategy<Value = V> + 'static>(mut self, weight: u32, strategy: S) -> Self {
        assert!(weight > 0, "prop_oneof! arm weight must be positive");
        self.total_weight += weight as u64;
        self.arms
            .push((weight, Box::new(move |rng| strategy.generate(rng))));
        self
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut Prng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, gen_fn) in &self.arms {
            if pick < *weight as u64 {
                return gen_fn(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick within total weight")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Prng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Prng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*` consumer expects in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests: a block of `#[test]` functions whose arguments are
/// drawn from strategies, run [`ProptestConfig::cases`] times each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand each `fn name(pat in strategy, ..) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::Prng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ()> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                // Err(()) marks a rejected (assumed-away) case; failures panic.
                let _ = (__outcome, __case);
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Weighted choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.with($weight as u32, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.with(1u32, $strategy))+
    };
}

/// Skip the current case when `cond` does not hold (the stub counts it as
/// passed instead of redrawing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Assert inside a property (panics — no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        Small(u8),
        Big(u64),
    }

    fn tag_strategy() -> impl Strategy<Value = Tag> {
        prop_oneof![
            3 => (0u8..10).prop_map(Tag::Small),
            1 => any::<u64>().prop_map(Tag::Big),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2i32..=2, f in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_and_pattern_args((a, b) in (0u32..4, 10u32..14), extra in any::<bool>()) {
            prop_assert!(a < 4);
            prop_assert!((10..14).contains(&b));
            prop_assert_ne!(a, b);
            let _ = extra;
        }

        #[test]
        fn oneof_hits_every_arm(t in tag_strategy()) {
            match t {
                Tag::Small(v) => prop_assert!(v < 10),
                Tag::Big(_) => {}
            }
        }

        #[test]
        fn assume_rejects_quietly(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = crate::Prng::from_name("just");
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.generate(&mut rng), vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::Prng::from_name("same");
        let mut b = crate::Prng::from_name("same");
        let mut c = crate::Prng::from_name("other");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
