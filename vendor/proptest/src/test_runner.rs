//! The stub's deterministic case generator.

/// splitmix64-based PRNG used to drive strategy generation. Seeded from the
/// test name so every property test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Generator with an explicit seed.
    pub fn new(seed: u64) -> Self {
        Prng {
            state: seed ^ 0x6a09_e667_f3bc_c908,
        }
    }

    /// Generator seeded from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Prng::new(h)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
