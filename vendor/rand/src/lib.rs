//! Minimal offline stand-in for the `rand` crate (0.9-style API).
//!
//! Implements only the surface this workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_range`],
//! [`Rng::random_bool`] and [`seq::IndexedRandom::choose`]. The generator is
//! a seeded xoshiro256++ — deterministic, but the streams differ from the
//! real `rand` crate for the same seed. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Core entropy source (subset of the upstream trait).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only the `u64` convenience seeding).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded with splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution
/// (`f64`/`f32` from `[0, 1)`, integers over their full range).
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (subset of the upstream `SampleRange`).
pub trait SampleRange<T> {
    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
    /// Draw one value; must not be called on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // Modulo reduction: bias is negligible for spans far below
                // 2^64, which covers every use in this workspace.
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn is_empty_range(&self) -> bool {
        // NaN endpoints compare as incomparable and make the range empty.
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a non-empty range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        assert!(!range.is_empty_range(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (must lie in `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..4000).filter(|_| rng.random_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn choose_is_uniformish() {
        use crate::seq::IndexedRandom;
        let mut rng = SmallRng::seed_from_u64(5);
        let items = [1u32, 2, 3, 4];
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[(*items.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }
}
