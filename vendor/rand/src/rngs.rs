//! Small, fast generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — small-state, fast, high-quality non-cryptographic PRNG
/// (public-domain algorithm by Blackman & Vigna). Stands in for the upstream
/// `SmallRng`; streams differ from the real crate for the same seed.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
