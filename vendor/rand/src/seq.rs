//! Sequence sampling helpers.

use crate::RngCore;

/// Uniform selection from indexable collections (subset of the upstream
/// trait: only [`IndexedRandom::choose`]).
pub trait IndexedRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    #[inline]
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}
