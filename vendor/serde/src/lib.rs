//! Minimal offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to keep its public
//! types forward-compatible with serialization; nothing in-tree performs
//! actual (de)serialization. The traits are therefore empty markers and the
//! derives (from the sibling `serde_derive` stub) emit empty impls. See
//! `vendor/README.md` for the swap-in path to the real crate.

// Let the derive-emitted `::serde::...` paths resolve inside this crate's
// own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (no methods in the stub).
pub trait Serialize {}

/// Marker for deserializable types (no methods in the stub).
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Point {
        x: u32,
        y: u32,
    }

    #[derive(super::Serialize, super::Deserialize)]
    enum Op {
        #[allow(dead_code)]
        Add,
        #[allow(dead_code)]
        Remove,
    }

    fn assert_serialize<T: super::Serialize>() {}
    fn assert_deserialize<T: for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derives_produce_impls() {
        assert_serialize::<Point>();
        assert_deserialize::<Point>();
        assert_serialize::<Op>();
        assert_deserialize::<Op>();
    }
}
