//! No-op derive macros for the offline `serde` stub.
//!
//! Each derive parses just the type name out of the item and emits an empty
//! trait impl. Generic types are rejected with a compile error — nothing in
//! this workspace derives serde traits on generics, and silently emitting a
//! wrong impl would be worse than failing loudly.

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier of the derived `struct`/`enum`/`union`, verifying
/// it carries no generic parameters.
fn type_ident(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("serde stub derive: expected a type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.next() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported (see vendor/README.md)");
        }
    }
    name
}

/// Derive a no-op `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_ident(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Derive a no-op `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_ident(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
